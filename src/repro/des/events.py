"""Event primitives for the discrete-event engine.

The engine's heap stores plain mutable list entries laid out as
``[time, seq, action]`` — Python lists compare lexicographically, the
unique ``seq`` breaks time ties in schedule order (so the callable in
slot 2 is never compared), and :mod:`heapq`'s C implementation sifts
them without calling back into Python.  Cancellation clears the action
slot in place, so the engine can skip a dead entry with one index load
instead of an attribute lookup on a per-event object.

:class:`Event` is the thin handle ``Engine.schedule`` returns: it wraps
one heap entry and exposes the read-only view (``time``/``seq``/
``cancelled``) plus :meth:`Event.cancel`.  Hot paths that never cancel
should use ``Engine.defer``, which skips the handle allocation
entirely.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["Event", "HeapEntry", "make_entry"]

#: One scheduled callback as stored on the engine heap:
#: ``[time, seq, action]`` with ``action is None`` once cancelled.
HeapEntry = List[Any]

#: Indices into a :data:`HeapEntry`.
ENTRY_TIME = 0
ENTRY_SEQ = 1
ENTRY_ACTION = 2


def make_entry(time: float, seq: int, action: Callable[[], Any]) -> HeapEntry:
    """Build one heap entry (see :data:`HeapEntry` for the layout)."""
    return [time, seq, action]


class Event:
    """Handle to one scheduled callback.

    Events are ordered by ``(time, seq)`` — the sequence number breaks
    ties deterministically in schedule order, which keeps simulations
    reproducible when many events share a timestamp.  The handle shares
    its heap entry with the engine: cancelling mutates the entry in
    place and the engine skips it when it reaches the top of the heap.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: HeapEntry):
        self._entry = entry

    @property
    def time(self) -> float:
        """Absolute simulated time the event fires at."""
        return float(self._entry[ENTRY_TIME])

    @property
    def seq(self) -> int:
        """Schedule-order sequence number (the deterministic tiebreak)."""
        return int(self._entry[ENTRY_SEQ])

    @property
    def action(self) -> Optional[Callable[[], Any]]:
        """The scheduled callback (``None`` once cancelled)."""
        action: Optional[Callable[[], Any]] = self._entry[ENTRY_ACTION]
        return action

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._entry[ENTRY_ACTION] is None

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        self._entry[ENTRY_ACTION] = None

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"
