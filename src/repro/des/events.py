"""Event primitives for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` — the sequence number breaks
    ties deterministically in schedule order, which keeps simulations
    reproducible when many events share a timestamp.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        self.cancelled = True
