"""Simulated servers: FCFS queues and processor-sharing VMs.

The paper's architecture runs one VM per request type on a server, with
the CPU shared according to ``phi_{k,i,l}``.  A VM with share ``phi`` on
a server of capacity ``C`` serving type-``k`` requests behaves as an
M/M/1 queue with rate ``phi * C * mu_k`` (Eq. 1); mean sojourn time is
the same under FCFS and egalitarian processor sharing, so both
disciplines are provided and cross-checked in tests.

:class:`FCFSQueueServer` is the hot server for large validation runs
(the ``des_million`` benchmark scenario), so it queues plain
``(arrival_time, work)`` tuples in a deque and completes jobs through
one persistent bound callback — no per-job object, closure, or
cancellation handle is allocated.  The processor-sharing
:class:`VirtualMachine` keeps per-job objects because its completion
events genuinely need cancellation on every arrival.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.des.engine import Engine
from repro.des.events import Event
from repro.des.measurements import SojournStats
from repro.utils.validation import check_positive

__all__ = ["FCFSQueueServer", "ProcessorSharingServer", "VirtualMachine"]


@dataclass
class _Job:
    job_id: int
    arrival_time: float
    remaining_work: float


class FCFSQueueServer:
    """Single-server FCFS queue with a fixed work-processing rate.

    Jobs carry exponential work requirements (mean 1 work unit) and the
    server drains work at ``rate`` units per time unit, so the queue is
    M/M/1 with service rate ``rate`` under Poisson arrivals.
    """

    __slots__ = ("_engine", "_inv_rate", "_queue", "_busy", "_stats",
                 "_current_arrival")

    def __init__(self, engine: Engine, rate: float,
                 stats: Optional[SojournStats] = None):
        check_positive(rate, "rate")
        self._engine = engine
        self._inv_rate = 1.0 / float(rate)
        self._queue: Deque[Tuple[float, float]] = deque()
        self._busy = False
        self._stats = stats if stats is not None else SojournStats()
        self._current_arrival = 0.0

    @property
    def stats(self) -> SojournStats:
        """Sojourn-time statistics recorder."""
        return self._stats

    @property
    def queue_length(self) -> int:
        """Jobs in system (queued + in service)."""
        return len(self._queue) + (1 if self._busy else 0)

    def arrive(self, work: float) -> None:
        """Admit a job with ``work`` exponential work units."""
        if self._busy:
            self._queue.append((self._engine.now, float(work)))
            return
        self._busy = True
        self._current_arrival = self._engine.now
        self._engine.defer(float(work) * self._inv_rate, self._complete)

    def _complete(self) -> None:
        self._stats.record(self._current_arrival, self._engine.now)
        if not self._queue:
            self._busy = False
            return
        arrival, work = self._queue.popleft()
        self._current_arrival = arrival
        self._engine.defer(work * self._inv_rate, self._complete)


class VirtualMachine:
    """Egalitarian processor-sharing queue with a CPU-share-limited rate.

    Models one per-type VM: ``rate = phi * C * mu_k`` work units per time
    unit split equally among resident jobs.  Event complexity is O(n) per
    arrival/departure, which is ample for validation-scale runs.
    """

    def __init__(self, engine: Engine, rate: float,
                 stats: Optional[SojournStats] = None):
        check_positive(rate, "rate")
        self._engine = engine
        self._rate = float(rate)
        self._jobs: List[_Job] = []
        self._stats = stats if stats is not None else SojournStats()
        self._last_update = engine.now
        self._completion_event: Optional[Event] = None
        self._next_id = 0

    @property
    def stats(self) -> SojournStats:
        """Sojourn-time statistics recorder."""
        return self._stats

    @property
    def queue_length(self) -> int:
        """Jobs currently sharing the VM."""
        return len(self._jobs)

    def _advance_work(self) -> None:
        """Drain work accrued since the last state change."""
        now = self._engine.now
        if self._jobs:
            per_job = (now - self._last_update) * self._rate / len(self._jobs)
            for job in self._jobs:
                job.remaining_work = max(0.0, job.remaining_work - per_job)
        self._last_update = now

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._jobs:
            return
        min_job = min(self._jobs, key=lambda j: j.remaining_work)
        time_to_finish = min_job.remaining_work * len(self._jobs) / self._rate
        self._completion_event = self._engine.schedule(
            time_to_finish, lambda: self._complete(min_job.job_id)
        )

    def _complete(self, job_id: int) -> None:
        self._advance_work()
        for idx, job in enumerate(self._jobs):
            if job.job_id == job_id:
                self._stats.record(job.arrival_time, self._engine.now)
                del self._jobs[idx]
                break
        self._completion_event = None
        self._reschedule_completion()

    def arrive(self, work: float) -> None:
        """Admit a job with ``work`` exponential work units."""
        self._advance_work()
        self._jobs.append(_Job(self._next_id, self._engine.now, float(work)))
        self._next_id += 1
        self._reschedule_completion()


class ProcessorSharingServer:
    """A physical server hosting per-request-type VMs.

    Parameters
    ----------
    engine:
        The event engine.
    capacity:
        Normalized capacity ``C`` of the server.
    service_rates:
        ``(K,)`` array of full-capacity per-type rates ``mu_k``.
    shares:
        ``(K,)`` array of CPU shares ``phi_k`` with ``sum(phi) <= 1``;
        classes with zero share host no VM and reject arrivals.
    """

    def __init__(self, engine: Engine, capacity: float,
                 service_rates: np.ndarray, shares: np.ndarray):
        check_positive(capacity, "capacity")
        rates = np.asarray(service_rates, dtype=float)
        shares_arr = np.asarray(shares, dtype=float)
        if rates.shape != shares_arr.shape:
            raise ValueError("service_rates and shares must have the same shape")
        if np.any(shares_arr < 0):
            raise ValueError("shares must be non-negative")
        if shares_arr.sum() > 1.0 + 1e-9:
            raise ValueError(f"shares sum to {shares_arr.sum():.6f} > 1")
        self._vms: Dict[int, VirtualMachine] = {}
        for k, (mu, phi) in enumerate(zip(rates, shares_arr)):
            if phi > 0:
                self._vms[k] = VirtualMachine(engine, rate=float(phi * capacity * mu))

    @property
    def active_classes(self) -> List[int]:
        """Class indices with a live VM."""
        return sorted(self._vms)

    def vm(self, k: int) -> VirtualMachine:
        """The VM for class ``k`` (KeyError if no share was allocated)."""
        return self._vms[k]

    def arrive(self, k: int, work: float) -> bool:
        """Offer one class-``k`` job; False if there is no VM for ``k``."""
        vm = self._vms.get(k)
        if vm is None:
            return False
        vm.arrive(work)
        return True
