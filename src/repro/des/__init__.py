"""Discrete-event simulation substrate.

The paper's optimizer *assumes* the M/M/1 mean-delay model (Eq. 1) for
each per-type VM.  This package provides an event-driven simulator with
Poisson arrivals, exponential service, FCFS and processor-sharing (PS)
disciplines, and CPU-share-limited VMs — enough to check that a plan's
predicted delays match "measured" delays, and to exercise the system
beyond the analytic model (failure injection, burstiness).
"""

from repro.des.engine import Engine
from repro.des.events import Event
from repro.des.reference import ReferenceEngine
from repro.des.server import FCFSQueueServer, ProcessorSharingServer, VirtualMachine
from repro.des.processes import PoissonArrivals, exponential_sampler
from repro.des.measurements import SojournStats, WelfordAccumulator
from repro.des.cluster import ClusterSimulation, SimulatedSlotOutcome, simulate_plan

__all__ = [
    "Engine",
    "Event",
    "ReferenceEngine",
    "FCFSQueueServer",
    "ProcessorSharingServer",
    "VirtualMachine",
    "PoissonArrivals",
    "exponential_sampler",
    "SojournStats",
    "WelfordAccumulator",
    "ClusterSimulation",
    "SimulatedSlotOutcome",
    "simulate_plan",
]
