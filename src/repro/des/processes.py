"""Stochastic arrival/service processes for the DES."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.des.engine import Engine
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["PoissonArrivals", "exponential_sampler"]


def exponential_sampler(
    rng: np.random.Generator, mean: float = 1.0
) -> Callable[[], float]:
    """Return a thunk sampling Exp(mean) work requirements."""
    check_positive(mean, "mean")

    def sample() -> float:
        return float(rng.exponential(mean))

    return sample


class PoissonArrivals:
    """Poisson arrival process feeding a sink callable.

    Each arrival invokes ``sink(work)`` where ``work`` is an exponential
    work requirement with mean 1 — the assumption behind the paper's
    M/M/1 delay model (Eq. 1).

    Parameters
    ----------
    engine:
        The event engine.
    rate:
        Arrival rate ``lambda`` (jobs per time unit).
    sink:
        Callable receiving each job's work requirement.
    seed:
        Seed or generator for interarrival and work sampling.
    stop_time:
        No arrivals are generated at or beyond this simulated time
        (None = run as long as the engine does).
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        sink: Callable[[float], object],
        seed=None,
        stop_time: Optional[float] = None,
    ):
        check_positive(rate, "rate")
        self._engine = engine
        self._rate = float(rate)
        self._sink = sink
        self._rng = as_generator(seed)
        self._stop_time = stop_time
        self._generated = 0
        self._schedule_next()

    @property
    def generated(self) -> int:
        """Number of arrivals generated so far."""
        return self._generated

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self._rate))
        next_time = self._engine.now + gap
        if self._stop_time is not None and next_time >= self._stop_time:
            return
        self._engine.schedule(gap, self._fire)

    def _fire(self) -> None:
        self._generated += 1
        work = float(self._rng.exponential(1.0))
        self._sink(work)
        self._schedule_next()
