"""Stochastic arrival/service processes for the DES.

:class:`PoissonArrivals` is the engine's main event source, so its
sampling is batched: instead of two ``Generator.exponential`` calls per
arrival (each paying numpy's per-call scalar dispatch), it draws blocks
of standard exponentials and consumes them sequentially, scaling gaps
by ``1/rate`` and work requirements by their unit mean.  Because
``Generator.exponential(scale)`` consumes exactly one value of the same
underlying ``standard_exponential`` stream, the batched process
produces *bit-identical* realizations to the per-call implementation
for any given seed — simulations stay reproducible across the
refactor (pinned by ``tests/test_property_des.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.des.engine import Engine
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["PoissonArrivals", "exponential_sampler"]

#: Standard exponential variates drawn per RNG refill.  One arrival
#: consumes two (interarrival gap + work requirement), so a block
#: covers 512 arrivals.
SAMPLE_BATCH = 1024


def exponential_sampler(
    rng: np.random.Generator, mean: float = 1.0
) -> Callable[[], float]:
    """Return a thunk sampling Exp(mean) work requirements."""
    check_positive(mean, "mean")

    def sample() -> float:
        return float(rng.exponential(mean))

    return sample


class PoissonArrivals:
    """Poisson arrival process feeding a sink callable.

    Each arrival invokes ``sink(work)`` where ``work`` is an exponential
    work requirement with mean 1 — the assumption behind the paper's
    M/M/1 delay model (Eq. 1).

    Parameters
    ----------
    engine:
        The event engine.
    rate:
        Arrival rate ``lambda`` (jobs per time unit).
    sink:
        Callable receiving each job's work requirement.
    seed:
        Seed or generator for interarrival and work sampling.
    stop_time:
        No arrivals are generated at or beyond this simulated time
        (None = run as long as the engine does).
    batch:
        Standard-exponential variates drawn per RNG refill (tuning
        knob; any positive value yields the same realization).
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        sink: Callable[[float], object],
        seed: SeedLike = None,
        stop_time: Optional[float] = None,
        batch: int = SAMPLE_BATCH,
    ):
        check_positive(rate, "rate")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self._engine = engine
        self._rate = float(rate)
        self._gap_scale = 1.0 / float(rate)
        self._sink = sink
        self._rng = as_generator(seed)
        self._stop_time = stop_time
        self._generated = 0
        self._batch = int(batch)
        self._samples: np.ndarray = np.empty(0, dtype=np.float64)
        self._cursor = 0
        self._schedule_next()

    @property
    def generated(self) -> int:
        """Number of arrivals generated so far."""
        return self._generated

    def _draw(self) -> float:
        """Next standard-exponential variate from the batched stream."""
        cursor = self._cursor
        if cursor >= self._samples.shape[0]:
            self._samples = self._rng.standard_exponential(self._batch)
            cursor = 0
        self._cursor = cursor + 1
        return float(self._samples[cursor])

    def _schedule_next(self) -> None:
        gap = self._draw() * self._gap_scale
        if self._stop_time is not None and self._engine.now + gap >= self._stop_time:
            return
        self._engine.defer(gap, self._fire)

    def _fire(self) -> None:
        self._generated += 1
        self._sink(self._draw())
        self._schedule_next()
