"""Whole-cluster discrete-event simulation of a dispatch plan.

The paper evaluates plans analytically: utility is earned at the
*expected* M/M/1 delay (Eq. 1).  This module closes the loop by actually
*running* a plan: every active (class, server) VM is instantiated as a
processor-sharing queue, Poisson arrivals are generated at the planned
per-(front-end, server) rates, and each job's realized sojourn time is
recorded.

Two revenue accountings are produced:

* ``mean_delay`` — the paper's: per-VM utility evaluated at the measured
  *mean* sojourn, times the completed count;
* ``per_job`` — utility evaluated at each job's own sojourn time and
  summed.  For a step-downward TUF these differ (a VM whose mean sits
  just inside a sub-deadline still has a tail of jobs beyond it), which
  quantifies how optimistic the paper's mean-delay SLA accounting is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.cloud.energy import EnergyModel
from repro.des.engine import Engine

if TYPE_CHECKING:  # avoid the core->queueing->des->core import cycle
    from repro.core.plan import DispatchPlan
from repro.des.measurements import SojournStats
from repro.des.processes import PoissonArrivals
from repro.des.server import VirtualMachine
from repro.utils.rng import RandomStreams
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["SimulatedSlotOutcome", "ClusterSimulation", "simulate_plan"]


@dataclass(frozen=True)
class SimulatedSlotOutcome:
    """Realized outcome of one simulated slot.

    Revenue figures are dollars over the slot; ``completed`` counts jobs
    that finished before the horizon.
    """

    revenue_mean_delay: float
    revenue_per_job: float
    energy_cost: float
    transfer_cost: float
    completed: int
    generated: int
    mean_sojourn: Dict[Tuple[int, int], float] = field(repr=False, default_factory=dict)
    predicted_sojourn: Dict[Tuple[int, int], float] = field(
        repr=False, default_factory=dict
    )

    @property
    def net_profit_mean_delay(self) -> float:
        """Net profit under the paper's mean-delay revenue accounting."""
        return self.revenue_mean_delay - self.energy_cost - self.transfer_cost

    @property
    def net_profit_per_job(self) -> float:
        """Net profit under per-job TUF accounting."""
        return self.revenue_per_job - self.energy_cost - self.transfer_cost

    @property
    def max_delay_model_error(self) -> float:
        """Worst relative |simulated - Eq.1| mean-sojourn error."""
        worst = 0.0
        for key, measured in self.mean_sojourn.items():
            predicted = self.predicted_sojourn.get(key)
            if predicted and predicted > 0:
                worst = max(worst, abs(measured - predicted) / predicted)
        return worst


class _RecordingVM(VirtualMachine):
    """A VM that also keeps raw sojourns for per-job accounting."""

    def __init__(self, engine: Engine, rate: float):
        super().__init__(engine, rate, stats=SojournStats(keep_raw=True))


class ClusterSimulation:
    """Event-driven simulation of one plan over one slot.

    Parameters
    ----------
    plan:
        The dispatch plan to execute.
    slot_duration:
        Simulated horizon (same time unit as the plan's rates).
    seed:
        Root seed; every (class, server) arrival stream is independent.
    warmup_fraction:
        Leading fraction of the horizon excluded from the sojourn means
        used in the ``mean_delay`` accounting (revenue/cost counts still
        include all completed jobs).
    """

    def __init__(
        self,
        plan: DispatchPlan,
        slot_duration: float,
        seed: Optional[int] = 0,
        warmup_fraction: float = 0.0,
    ):
        check_positive(slot_duration, "slot_duration")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.plan = plan
        self.slot_duration = float(slot_duration)
        self.warmup_fraction = float(warmup_fraction)
        self._streams = RandomStreams(seed)

    def run(self, prices: np.ndarray) -> SimulatedSlotOutcome:
        """Simulate the slot and return the realized outcome."""
        plan = self.plan
        topo = plan.topology
        prices = check_nonnegative(prices, "prices")
        if prices.shape != (topo.num_datacenters,):
            raise ValueError(
                f"prices must have shape {(topo.num_datacenters,)}"
            )
        engine = Engine()
        loads = plan.server_loads()  # (K, N)
        service = plan.server_service_rates()  # (K, N)
        horizon = self.slot_duration
        warmup = self.warmup_fraction * horizon

        vms: Dict[Tuple[int, int], _RecordingVM] = {}
        generators: List[PoissonArrivals] = []
        for k in range(topo.num_classes):
            for n in range(topo.num_servers):
                lam = float(loads[k, n])
                share = float(plan.shares[k, n])
                if lam <= 0 or share <= 0:
                    continue
                vm = _RecordingVM(engine, rate=share * service[k, n])
                vm.stats.warmup_time = warmup
                vms[(k, n)] = vm
                generators.append(PoissonArrivals(
                    engine, rate=lam, sink=vm.arrive,
                    seed=self._streams.stream(f"arrivals-{k}-{n}"),
                    stop_time=horizon,
                ))
        engine.run_until(horizon)
        # Let in-flight jobs drain (bounded residual work).
        engine.run(max_events=1_000_000)

        revenue_mean = 0.0
        revenue_jobs = 0.0
        completed = 0
        generated = sum(g.generated for g in generators)
        mean_sojourn: Dict[Tuple[int, int], float] = {}
        predicted: Dict[Tuple[int, int], float] = {}
        analytic = plan.delays()
        for (k, n), vm in vms.items():
            tuf = topo.request_classes[k].tuf
            raw = np.asarray(vm.stats.raw)
            if raw.size:
                revenue_jobs += float(np.sum(tuf.utility(raw)))
                completed += int(raw.size)
            if vm.stats.count:
                mean_sojourn[(k, n)] = vm.stats.mean
                predicted[(k, n)] = float(analytic[k, n])
                revenue_mean += float(tuf.utility(vm.stats.mean)) * raw.size

        # Costs follow realized *generated* traffic (every dispatched
        # request is transferred and processed, utility or not).
        per_pair_counts = {
            key: generators[i].generated
            for i, key in enumerate(vms.keys())
        }
        energy_model = EnergyModel(topo.datacenters)
        energy_per_req = energy_model.per_request_cost(prices)  # (K, L)
        transfer_per_req = topo.transfer_model().per_request_cost()  # (K,S,L)
        dc_of = plan._dc_of_server()
        energy_cost = 0.0
        transfer_cost = 0.0
        rates = plan.rates  # (K, S, N)
        for (k, n), count in per_pair_counts.items():
            l = int(dc_of[n])
            energy_cost += float(energy_per_req[k, l]) * count
            # Split the count over front-ends proportionally to the plan.
            total = rates[k, :, n].sum()
            if total > 0:
                weights = rates[k, :, n] / total
                transfer_cost += float(
                    (weights * transfer_per_req[k, :, l]).sum()
                ) * count

        return SimulatedSlotOutcome(
            revenue_mean_delay=revenue_mean,
            revenue_per_job=revenue_jobs,
            energy_cost=energy_cost,
            transfer_cost=transfer_cost,
            completed=completed,
            generated=generated,
            mean_sojourn=mean_sojourn,
            predicted_sojourn=predicted,
        )


def simulate_plan(
    plan: DispatchPlan,
    prices: np.ndarray,
    slot_duration: float,
    seed: Optional[int] = 0,
    warmup_fraction: float = 0.0,
) -> SimulatedSlotOutcome:
    """Convenience wrapper around :class:`ClusterSimulation`."""
    return ClusterSimulation(
        plan, slot_duration, seed=seed, warmup_fraction=warmup_fraction
    ).run(prices)
