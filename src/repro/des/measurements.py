"""Online statistics collection for simulations.

:class:`SojournStats.record` sits on the engine's per-completion hot
path, so the Welford update is inlined onto plain scalar attributes —
one ``record`` call is a bounds check plus four float operations, with
no delegation into a nested accumulator object.  The standalone
:class:`WelfordAccumulator` keeps the same algorithm as the reusable
building block (and gains a vectorized :meth:`WelfordAccumulator.add_batch`
for bulk folds via Chan's parallel-merge formula).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["WelfordAccumulator", "SojournStats"]


class WelfordAccumulator:
    """Numerically stable online mean/variance (Welford's algorithm)."""

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def add_batch(self, values: "np.ndarray") -> None:
        """Fold a whole array of observations in one vectorized step.

        Equivalent to calling :meth:`add` per element (same mean and
        variance up to floating-point reassociation), but the batch
        moments are computed with numpy and merged with Chan's
        parallel-merge formula — the cheap path for measurement sweeps
        that arrive as arrays rather than one event at a time.
        """
        arr = np.asarray(values, dtype=float).ravel()
        n = int(arr.size)
        if n == 0:
            return
        batch_mean = float(arr.mean())
        batch_m2 = float(((arr - batch_mean) ** 2).sum())
        if self._count == 0:
            self._count = n
            self._mean = batch_mean
            self._m2 = batch_m2
            return
        total = self._count + n
        delta = batch_mean - self._mean
        self._m2 += batch_m2 + delta * delta * (self._count * n / total)
        self._mean += delta * (n / total)
        self._count = total

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with < 2 observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self._count == 0:
            return 0.0
        return self.std / math.sqrt(self._count)


@dataclass
class SojournStats:
    """Recorder for per-job sojourn (response) times.

    ``warmup`` observations collected before ``warmup_time`` are
    discarded so steady-state comparisons against M/M/1 analytics are
    not biased by the empty-system start.

    The Welford state lives directly on this object (``_count``,
    ``_mean``, ``_m2``) so the per-completion :meth:`record` call does
    not pay a second object's attribute traffic.
    """

    warmup_time: float = 0.0
    keep_raw: bool = False
    _count: int = field(default=0, repr=False)
    _mean: float = field(default=0.0, repr=False)
    _m2: float = field(default=0.0, repr=False)
    _discarded: int = field(default=0, repr=False)
    _raw: List[float] = field(default_factory=list, repr=False)

    def record(self, arrival_time: float, departure_time: float) -> None:
        """Record one completed job's sojourn time."""
        if departure_time < arrival_time:
            raise ValueError("departure before arrival")
        if arrival_time < self.warmup_time:
            self._discarded += 1
            return
        sojourn = departure_time - arrival_time
        count = self._count + 1
        self._count = count
        delta = sojourn - self._mean
        self._mean += delta / count
        self._m2 += delta * (sojourn - self._mean)
        if self.keep_raw:
            self._raw.append(sojourn)

    @property
    def count(self) -> int:
        """Jobs recorded after warmup."""
        return self._count

    @property
    def discarded(self) -> int:
        """Jobs discarded during warmup."""
        return self._discarded

    @property
    def mean(self) -> float:
        """Mean sojourn time after warmup."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with < 2 observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sojourn standard deviation after warmup."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean sojourn time."""
        if self._count == 0:
            return 0.0
        return self.std / math.sqrt(self._count)

    @property
    def raw(self) -> List[float]:
        """Raw sojourn samples (only if ``keep_raw``)."""
        return list(self._raw)
