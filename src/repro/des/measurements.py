"""Online statistics collection for simulations."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

__all__ = ["WelfordAccumulator", "SojournStats"]


class WelfordAccumulator:
    """Numerically stable online mean/variance (Welford's algorithm)."""

    def __init__(self):
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with < 2 observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self._count == 0:
            return 0.0
        return self.std / math.sqrt(self._count)


@dataclass
class SojournStats:
    """Recorder for per-job sojourn (response) times.

    ``warmup`` observations collected before ``warmup_time`` are
    discarded so steady-state comparisons against M/M/1 analytics are
    not biased by the empty-system start.
    """

    warmup_time: float = 0.0
    _acc: WelfordAccumulator = field(default_factory=WelfordAccumulator)
    _discarded: int = 0
    _raw: List[float] = field(default_factory=list)
    keep_raw: bool = False

    def record(self, arrival_time: float, departure_time: float) -> None:
        """Record one completed job's sojourn time."""
        if departure_time < arrival_time:
            raise ValueError("departure before arrival")
        if arrival_time < self.warmup_time:
            self._discarded += 1
            return
        sojourn = departure_time - arrival_time
        self._acc.add(sojourn)
        if self.keep_raw:
            self._raw.append(sojourn)

    @property
    def count(self) -> int:
        """Jobs recorded after warmup."""
        return self._acc.count

    @property
    def discarded(self) -> int:
        """Jobs discarded during warmup."""
        return self._discarded

    @property
    def mean(self) -> float:
        """Mean sojourn time after warmup."""
        return self._acc.mean

    @property
    def std(self) -> float:
        """Sojourn standard deviation after warmup."""
        return self._acc.std

    @property
    def stderr(self) -> float:
        """Standard error of the mean sojourn time."""
        return self._acc.stderr

    @property
    def raw(self) -> List[float]:
        """Raw sojourn samples (only if ``keep_raw``)."""
        return list(self._raw)
