"""The discrete-event simulation engine.

A minimal, deterministic event loop: a binary heap of plain
``[time, seq, action]`` list entries (see :mod:`repro.des.events`)
ordered by ``(time, seq)``.  Components (arrival processes, servers)
schedule callbacks against the engine and the engine advances simulated
time monotonically.

The entry layout is the engine's hot-path contract: :mod:`heapq` sifts
list entries entirely in C (the unique ``seq`` guarantees the callable
slot is never compared), cancellation clears the action slot in place,
and the run loops bind the heap and ``heappop`` to locals so executing
one event costs a handful of index loads rather than a cascade of
attribute lookups on per-event objects.  The pre-refactor object-based
engine is preserved verbatim as
:class:`repro.des.reference.ReferenceEngine` — the behavioural oracle
for the property suite and the baseline the ``des_million`` benchmark
scenario measures its speedup against.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.des.events import Event, HeapEntry

__all__ = ["Engine"]


class Engine:
    """Deterministic event-driven simulator core."""

    __slots__ = ("_heap", "_now", "_seq", "_processed")

    def __init__(self) -> None:
        self._heap: List[HeapEntry] = []
        self._now = 0.0
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry: HeapEntry = [self._now + delay, self._seq, action]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def defer(self, delay: float, action: Callable[[], Any]) -> None:
        """Schedule ``action`` without returning a cancellation handle.

        Identical ordering semantics to :meth:`schedule`, but the
        :class:`~repro.des.events.Event` handle allocation is skipped —
        the fast path for arrival/completion events that are never
        cancelled (the bulk of a large simulation).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, [self._now + delay, self._seq, action])
        self._seq += 1

    def schedule_at(self, time: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, action)

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False if empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            action = entry[2]
            if action is None:
                continue
            self._now = entry[0]
            action()
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events with time <= ``end_time``.

        The clock is left at ``end_time`` (or at the last event if
        ``max_events`` stops the run early).
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            entry = heap[0]
            action = entry[2]
            if action is None:
                pop(heap)
                continue
            time = entry[0]
            if time > end_time:
                break
            if max_events is not None and executed >= max_events:
                return
            pop(heap)
            self._now = time
            action()
            self._processed += 1
            executed += 1
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains (or ``max_events``)."""
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            entry = pop(heap)
            action = entry[2]
            if action is None:
                continue
            self._now = entry[0]
            action()
            self._processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                return
