"""The discrete-event simulation engine.

A minimal, deterministic event loop: a binary heap of
:class:`~repro.des.events.Event` ordered by ``(time, seq)``.  Components
(arrival processes, servers) schedule callbacks against the engine and
the engine advances simulated time monotonically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.des.events import Event

__all__ = ["Engine"]


class Engine:
    """Deterministic event-driven simulator core."""

    def __init__(self):
        self._heap: List[Event] = []
        self._now = 0.0
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, action)

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events with time <= ``end_time``.

        The clock is left at ``end_time`` (or at the last event if
        ``max_events`` stops the run early).
        """
        executed = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time > end_time:
                break
            if max_events is not None and executed >= max_events:
                return
            heapq.heappop(self._heap)
            self._now = event.time
            event.action()
            self._processed += 1
            executed += 1
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains (or ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                return
