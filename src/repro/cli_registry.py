"""Subcommand registry for the ``repro`` CLI.

Each subsystem registers its subcommand with
:func:`register_subcommand` instead of being hand-wired into
``repro.cli.build_parser`` — the parser and the dispatch table are both
derived from the registry, so adding a command is one decorator in the
owning module, not three edits in ``cli.py``.

This module is import-light on purpose (stdlib only): subsystem CLI
modules import it at module scope without dragging the scientific
stack in, and ``repro.cli`` imports *them* for the registration side
effect.  Registration is idempotent per function object, so repeated
imports and repeated ``build_parser()`` calls are safe.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = [
    "Subcommand",
    "get_subcommand",
    "register_subcommand",
    "registered_subcommands",
]

RunFunc = Callable[[argparse.Namespace], int]
ConfigureFunc = Callable[[argparse.ArgumentParser], None]


@dataclass(frozen=True)
class Subcommand:
    """One registered ``repro <name>`` subcommand."""

    name: str
    help_text: str
    run: RunFunc
    #: Optional hook adding the subcommand's arguments to its subparser.
    configure: Optional[ConfigureFunc] = None


_REGISTRY: Dict[str, Subcommand] = {}


def register_subcommand(
    name: str,
    help_text: str,
    configure: Optional[ConfigureFunc] = None,
) -> Callable[[RunFunc], RunFunc]:
    """Register ``repro <name>``; decorates the run function.

    The decorated function receives the parsed
    :class:`argparse.Namespace` and returns a process exit code.
    Re-registering the *same* function under the same name is a no-op
    (idempotent across repeated imports); registering a different
    function under a taken name raises ``ValueError``.
    """

    def wrap(run: RunFunc) -> RunFunc:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.run is not run:
            raise ValueError(
                f"subcommand {name!r} is already registered "
                f"(by {existing.run.__module__}.{existing.run.__qualname__})"
            )
        _REGISTRY[name] = Subcommand(
            name=name, help_text=help_text, run=run, configure=configure
        )
        return run

    return wrap


def registered_subcommands() -> List[Subcommand]:
    """All registered subcommands in registration order."""
    return list(_REGISTRY.values())


def get_subcommand(name: str) -> Subcommand:
    """Look up one subcommand; raises ``KeyError`` when unknown."""
    return _REGISTRY[name]
