"""Green-energy extension: renewables as effective price discounts.

The paper situates itself against green-energy work (Le et al.) and its
model folds renewables in naturally: on-site solar/wind covers a
fraction of each slot's processing energy, which is an *effective*
electricity price per location — the optimizer runs unchanged.

This example equips the §VII data centers — whose per-request energies
are large enough that electricity dollars matter — with solar at
Mountain View and wind at Houston, then compares the 7-hour window
against the all-brown baseline: net profit, dispatch shift toward the
green locations, and the brown-energy fraction.

Run:  python examples/green_energy.py
"""

import numpy as np

from repro import (
    GreenEnergyProfile,
    ProfitAwareOptimizer,
    apply_green_energy,
    brown_energy_fraction,
    run_simulation,
    solar_profile,
    wind_profile,
)
from repro.experiments.section7 import PRICE_WINDOW, section7_experiment
from repro.sim.metrics import dispatch_matrix
from repro.utils.ascii_plot import sparkline
from repro.utils.tables import render_table


def _window(profile: GreenEnergyProfile) -> GreenEnergyProfile:
    """Cut a 24-hour coverage profile to the §VII price window."""
    idx = np.arange(*PRICE_WINDOW) % len(profile)
    return GreenEnergyProfile(profile.name, profile.availability[idx])


def main() -> None:
    exp = section7_experiment()
    profiles = [
        _window(wind_profile(mean_coverage=0.35, seed=42)),   # Houston
        _window(solar_profile(peak_coverage=0.7)),            # Mountain View
    ]
    green_market = apply_green_energy(exp.market, profiles)

    print("Effective prices with renewables folded in ($/kWh):")
    for trace in green_market.traces:
        print(f"  {trace.location:>28s}: {sparkline(trace.prices)} "
              f"(mean {trace.mean():.4f})")
    print()

    runs = {}
    for label, market in (("brown", exp.market), ("green", green_market)):
        runs[label] = run_simulation(
            ProfitAwareOptimizer(exp.topology), exp.trace, market
        )

    rows = []
    for label, result in runs.items():
        # Per-DC energy (kWh) per slot for the brown-fraction accounting.
        slot = exp.trace.slot_duration
        energy = np.stack([
            (r.outcome.dc_loads * exp.topology.energy_per_request).sum(axis=0)
            * slot
            for r in result.records
        ], axis=1)  # (L, T)
        frac = brown_energy_fraction(
            list(profiles) if label == "green" else [None] * len(profiles),
            energy,
        )
        rows.append([
            label,
            result.total_net_profit,
            result.ledger.total_cost,
            result.ledger.total_energy_kwh,
            frac * 100.0,
        ])
    print(render_table(
        ["market", "day net profit ($)", "energy+transfer cost ($)",
         "energy (kWh)", "brown energy (%)"],
        rows,
        title="All-brown grid vs renewables-equipped fleet",
        float_fmt=",.1f",
    ))

    shift = (dispatch_matrix(runs["green"].records).sum(axis=(0, 1))
             - dispatch_matrix(runs["brown"].records).sum(axis=(0, 1)))
    labels = [dc.name for dc in exp.topology.datacenters]
    print("\nLoad shift under green prices (requests/hour, + toward DC):")
    for name, delta in zip(labels, shift):
        print(f"  {name:>12s}: {delta:+,.0f}")


if __name__ == "__main__":
    main()
