"""Capacity planning and predictive control.

Two downstream uses of the library beyond the paper's experiments:

1. **Capacity sweep** — how many servers per data center does the §VII
   workload actually need?  Sweeps the fleet size, reporting day profit,
   completion, and how many servers right-sizing actually powers on.
2. **Predictive control** — the paper assumes next-slot arrival rates
   are known; §III notes a Kalman filter can forecast them.  This runs
   the controller with the library's Kalman predictor and quantifies the
   profit lost to forecasting error versus the oracle.

Run:  python examples/capacity_planning.py
"""

from repro.experiments.section7 import section7_experiment
from repro.sim.metrics import powered_on_series
from repro.sim.slotted import run_simulation
from repro.utils.tables import render_table
from repro.workload.prediction import EWMAPredictor, KalmanFilterPredictor


def capacity_sweep() -> None:
    rows = []
    for servers in (2, 4, 6, 8, 10):
        exp = section7_experiment()
        topo = exp.topology.with_servers_per_datacenter(servers)
        result = run_simulation(
            __import__("repro").ProfitAwareOptimizer(
                topo,
                config=__import__("repro").OptimizerConfig(consolidate=True),
            ),
            exp.trace, exp.market,
        )
        powered = powered_on_series(result.records)
        rows.append([
            servers * 2,
            result.total_net_profit,
            float(result.completion_fractions.min()) * 100.0,
            float(powered.sum(axis=1).mean()),
        ])
    print(render_table(
        ["fleet size", "7h net profit ($)", "min completion (%)",
         "avg servers on"],
        rows,
        title="Capacity sweep on the section-VII workload (consolidated)",
        float_fmt=",.1f",
    ))
    print("  -> profit saturates once completion hits 100%; right-sizing\n"
          "     keeps the powered-on count near the workload's true need.\n")


def predictive_control() -> None:
    exp = section7_experiment()
    oracle = run_simulation(exp.optimizer(), exp.trace, exp.market)
    kalman = run_simulation(
        exp.optimizer(), exp.trace, exp.market,
        predictor_factory=lambda: KalmanFilterPredictor(
            process_var=5e7, observation_var=5e7,
            initial_estimate=float(exp.trace.rates.mean()),
            initial_var=1e10,
        ),
    )
    ewma = run_simulation(
        exp.optimizer(), exp.trace, exp.market,
        predictor_factory=lambda: EWMAPredictor(
            alpha=0.6, initial=float(exp.trace.rates.mean())
        ),
    )
    rows = [
        ["oracle rates", oracle.total_net_profit, 100.0],
        ["kalman forecast", kalman.total_net_profit,
         kalman.total_net_profit / oracle.total_net_profit * 100.0],
        ["ewma forecast", ewma.total_net_profit,
         ewma.total_net_profit / oracle.total_net_profit * 100.0],
    ]
    print(render_table(
        ["arrival knowledge", "7h net profit ($)", "% of oracle"],
        rows,
        title="Predictive control (paper section III's forecasting hook)",
        float_fmt=",.1f",
    ))


if __name__ == "__main__":
    capacity_sweep()
    predictive_control()
