"""Model validation: the optimizer's M/M/1 delay model vs simulation.

The paper's entire formulation rests on Eq. 1 — the M/M/1 mean-delay
formula for a CPU-share-limited VM.  This example plans a slot, then
*simulates* the planned system with the discrete-event engine (Poisson
arrivals, exponential work, egalitarian processor sharing) and compares
measured mean delays against the plan's predictions, per (class, server).

Run:  python examples/model_validation.py
"""

import numpy as np

from repro import ProfitAwareOptimizer, random_topology
from repro.des.engine import Engine
from repro.des.processes import PoissonArrivals
from repro.des.server import ProcessorSharingServer
from repro.utils.tables import render_table


def simulate_server(topology, plan, n, horizon_jobs=4000, seed=0):
    """Simulate one planned server; returns per-class measured delays."""
    dc_idx = int(plan._dc_of_server()[n])
    dc = topology.datacenters[dc_idx]
    loads = plan.server_loads()[:, n]
    engine = Engine()
    server = ProcessorSharingServer(
        engine, capacity=dc.server_capacity,
        service_rates=dc.service_rates, shares=plan.shares[:, n],
    )
    max_load = float(loads.max())
    horizon = horizon_jobs / max_load
    for k, lam in enumerate(loads):
        if lam > 0:
            PoissonArrivals(
                engine, rate=float(lam),
                sink=lambda w, kk=k: server.arrive(kk, w),
                seed=seed + k, stop_time=horizon,
            )
    engine.run()
    out = {}
    for k in range(topology.num_classes):
        if loads[k] > 0:
            out[k] = server.vm(k).stats
    return out


def main() -> None:
    topo = random_topology(num_classes=3, num_frontends=2,
                           num_datacenters=2, servers_per_datacenter=3,
                           seed=0)
    arrivals = np.full((3, 2), 120.0)
    prices = np.array([0.05, 0.11])
    plan = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
    predicted = plan.delays()

    rows = []
    loads = plan.server_loads()
    for n in range(topo.num_servers):
        if loads[:, n].sum() <= 0:
            continue
        measured = simulate_server(topo, plan, n)
        for k, stats in measured.items():
            pred = float(predicted[k, n])
            err = abs(stats.mean - pred) / pred * 100.0
            rows.append([
                f"server{n}", topo.request_classes[k].name,
                loads[k, n], pred, stats.mean, stats.count, err,
            ])
        if len(rows) >= 8:
            break

    print(render_table(
        ["server", "class", "load (req/s)", "Eq.1 delay (s)",
         "simulated (s)", "jobs", "error (%)"],
        rows,
        title="M/M/1 model (paper Eq. 1) vs discrete-event simulation",
        float_fmt=".4g",
    ))
    errors = [row[-1] for row in rows]
    print(f"\nmean relative error: {np.mean(errors):.1f}%  "
          f"(finite-horizon sampling noise; shrinks with longer runs)")


if __name__ == "__main__":
    main()
