"""Google-trace study with two-level TUFs (paper §VII).

Runs the 7-hour Google-like workload through the multi-level MILP
optimizer and the Balanced baseline in the volatile 14:00-19:00 price
window, printing per-hour profits (Fig. 8), completion fractions and the
cost trade-off (Fig. 9 / §VII-B2), and a comparison of the exact MILP
against the paper-literal big-M path and the greedy heuristic.

Run:  python examples/google_twolevel.py
"""

import numpy as np

from repro.core.objective import evaluate_plan
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.experiments.section7 import section7_experiment
from repro.sim.metrics import net_profit_series
from repro.utils.tables import render_table


def main() -> None:
    exp = section7_experiment()
    print(exp.description, "\n")
    results = exp.run_comparison()
    opt, bal = results["optimized"], results["balanced"]

    rows = [
        [t, float(net_profit_series(opt.records)[t]),
         float(net_profit_series(bal.records)[t]),
         float(opt.records[t].prices[0]), float(opt.records[t].prices[1])]
        for t in range(exp.trace.num_slots)
    ]
    print(render_table(
        ["hour", "optimized ($)", "balanced ($)", "p(houston)", "p(mtn view)"],
        rows,
        title="Hourly net profit with two-level TUFs (Fig. 8)",
        float_fmt=",.2f",
    ))

    print("\nCompletions and cost (Fig. 9 / paper §VII-B2):")
    print(f"  optimized completes {np.round(opt.completion_fractions * 100, 2)}% "
          f"of each type;  balanced {np.round(bal.completion_fractions * 100, 2)}%")
    print(f"  total cost: optimized ${opt.total_cost:,.0f} vs balanced "
          f"${bal.total_cost:,.0f} (ratio {opt.total_cost / bal.total_cost:.3f})")
    print(f"  net profit: optimized ${opt.total_net_profit:,.0f} vs balanced "
          f"${bal.total_net_profit:,.0f}")

    # Solver-path comparison on one slot.
    arrivals = exp.trace.arrivals_at(2)
    prices = exp.market.prices_at(2)
    print("\nLevel-selection solver paths on hour 2 (same slot problem):")
    for label, config in [
        ("exact MILP (HiGHS)", OptimizerConfig(level_method="milp")),
        ("exact MILP (own B&B)",
         OptimizerConfig(level_method="milp", milp_method="bb")),
        ("paper big-M + repair", OptimizerConfig(level_method="bigm")),
        ("greedy level search", OptimizerConfig(level_method="greedy")),
    ]:
        optimizer = ProfitAwareOptimizer(exp.topology, config=config)
        plan = optimizer.plan_slot(arrivals, prices, slot_duration=1.0)
        profit = evaluate_plan(plan, arrivals, prices).net_profit
        print(f"  {label:>22s}: ${profit:,.0f} "
              f"({optimizer.last_stats.wall_time * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
