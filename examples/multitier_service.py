"""Multi-tier services: Jackson-network delays inside the TUF model.

The paper's unified task model treats a request as one service hit; the
multi-tier literature it builds on (Liu/Squillante/Wolf, Wang et al.)
chains tiers: web -> application -> database, with some requests looping
back for extra application/database rounds.  The library's
:class:`~repro.queueing.jackson.JacksonNetwork` gives exact end-to-end
delays for such chains, which plug into step-downward TUFs exactly like
Eq. 1 — so profit-aware capacity decisions extend to whole tiers.

This example sizes the application tier of a 3-tier service: for each
candidate allocation of CPU between the app and db tiers it computes the
end-to-end delay, the achieved TUF level, and the slot profit.

Run:  python examples/multitier_service.py
"""

import numpy as np

from repro.core.tuf import StepDownwardTUF
from repro.queueing.jackson import JacksonNetwork
from repro.utils.tables import render_table

ARRIVAL_RATE = 60.0          # requests/s entering the web tier
WEB_RATE = 220.0             # web tier service rate (fixed)
TIER_BUDGET = 400.0          # CPU budget split between app and db tiers
LOOPBACK = 0.25              # fraction of app hits that re-query the db
TUF = StepDownwardTUF(values=[8.0, 3.0], deadlines=[0.032, 0.120])


def three_tier(app_rate: float, db_rate: float) -> JacksonNetwork:
    """web -> app -> db, with db results looping back to the app tier."""
    return JacksonNetwork(
        service_rates=np.array([WEB_RATE, app_rate, db_rate]),
        external_arrivals=np.array([ARRIVAL_RATE, 0.0, 0.0]),
        routing=np.array([
            # web    app     db
            [0.0,    1.0,    0.0],      # web hands to app
            [0.0,    0.0,    1.0],      # app queries db
            [0.0,    LOOPBACK, 0.0],    # db returns; some loop to app
        ]),
    )


def main() -> None:
    rows = []
    best = None
    for app_share in np.linspace(0.30, 0.70, 9):
        app_rate = app_share * TIER_BUDGET
        db_rate = TIER_BUDGET - app_rate
        net = three_tier(app_rate, db_rate)
        if not net.is_stable:
            rows.append([f"{app_share:.2f}", app_rate, db_rate,
                         float("inf"), -1, 0.0])
            continue
        delay = net.mean_path_time(entry=0)
        level = TUF.level_for_delay(delay)
        revenue_rate = float(TUF.utility(delay)) * ARRIVAL_RATE
        rows.append([f"{app_share:.2f}", app_rate, db_rate, delay,
                     level + 1 if level >= 0 else 0, revenue_rate])
        if best is None or revenue_rate > best[1]:
            best = (app_share, revenue_rate, delay)

    print(render_table(
        ["app share", "app rate (/s)", "db rate (/s)",
         "end-to-end delay (s)", "TUF level", "revenue ($/s)"],
        rows,
        title=(f"3-tier service sizing: lambda={ARRIVAL_RATE:g}/s, "
               f"budget={TIER_BUDGET:g}/s, {LOOPBACK:.0%} db loopback"),
    ))
    assert best is not None
    print(f"\nbest split: {best[0]:.2f} of the budget to the app tier "
          f"-> delay {best[2] * 1e3:.1f} ms, revenue ${best[1]:,.1f}/s")
    net = three_tier(best[0] * TIER_BUDGET, (1 - best[0]) * TIER_BUDGET)
    lam = net.effective_arrivals()
    print("effective tier loads (requests/s): "
          + ", ".join(f"{name}={v:.1f}" for name, v in
                      zip(("web", "app", "db"), lam)))
    print("(db sees more than the entry rate because of loopback: "
          f"visit count {net.visit_counts(0)[2]:.3f} per request)")


if __name__ == "__main__":
    main()
