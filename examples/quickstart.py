"""Quickstart: profit-aware dispatching for one time slot.

Builds a tiny multi-electricity-market cloud (2 request types, 2 data
centers, 1 front-end), plans one slot with the profit-aware optimizer,
compares it against the paper's price-greedy "Balanced" baseline, and
prints the itemized outcome.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BalancedDispatcher,
    CloudTopology,
    ConstantTUF,
    DataCenter,
    FrontEnd,
    OptimizerConfig,
    ProfitAwareOptimizer,
    RequestClass,
    evaluate_plan,
)
from repro.utils.tables import render_table


def build_topology() -> CloudTopology:
    """Two request classes served by two heterogeneous data centers."""
    classes = (
        # 10$ per web-search-like request if its mean delay stays below
        # 20 ms; transferring one request costs 0.001 $ per mile.
        RequestClass("search", ConstantTUF(value=10.0, deadline=0.020),
                     transfer_unit_cost=1e-3),
        RequestClass("video", ConstantTUF(value=25.0, deadline=0.050),
                     transfer_unit_cost=3e-3),
    )
    datacenters = (
        DataCenter("oregon", num_servers=4,
                   service_rates=np.array([160.0, 90.0]),     # req/s
                   energy_per_request=np.array([3e-4, 8e-4])),  # kWh
        DataCenter("virginia", num_servers=4,
                   service_rates=np.array([140.0, 110.0]),
                   energy_per_request=np.array([4e-4, 6e-4])),
    )
    frontends = (FrontEnd("chicago"),)
    distances = np.array([[1700.0, 700.0]])  # miles
    return CloudTopology(classes, frontends, datacenters, distances)


def main() -> None:
    topo = build_topology()
    arrivals = np.array([[350.0], [180.0]])   # (K, S) requests/second
    prices = np.array([0.055, 0.110])         # $/kWh at each data center
    slot = 3600.0                              # one-hour slot, in seconds

    # All knobs live on the frozen OptimizerConfig; the defaults are the
    # paper's formulation, so an empty config is the usual starting point.
    optimizer = ProfitAwareOptimizer(topo, config=OptimizerConfig())
    balanced = BalancedDispatcher(topo)

    rows = []
    for dispatcher in (optimizer, balanced):
        plan = dispatcher.plan_slot(arrivals, prices, slot_duration=slot)
        outcome = evaluate_plan(plan, arrivals, prices, slot_duration=slot)
        rows.append([
            dispatcher.name,
            outcome.net_profit,
            outcome.revenue,
            outcome.total_cost,
            outcome.served_requests,
            int(plan.powered_on_per_dc().sum()),
        ])

    print(render_table(
        ["approach", "net profit ($)", "revenue ($)", "cost ($)",
         "requests served", "servers on"],
        rows,
        title="One-hour slot: Optimized vs Balanced",
        float_fmt=",.0f",
    ))

    plan = optimizer.plan_slot(arrivals, prices, slot_duration=slot)
    print("\nWhere did the load go? (requests/second per data center)")
    print(render_table(
        ["class", *[dc.name for dc in topo.datacenters]],
        [[rc.name, *plan.dc_loads()[k].tolist()]
         for k, rc in enumerate(topo.request_classes)],
        float_fmt=",.1f",
    ))
    print("\nExpected per-class delays vs deadlines (seconds):")
    delays = plan.delays()
    for k, rc in enumerate(topo.request_classes):
        worst = np.nanmax(delays[k]) if not np.all(np.isnan(delays[k])) else 0.0
        print(f"  {rc.name:>7s}: worst {worst:.5f}  deadline {rc.deadline:.3f}")


if __name__ == "__main__":
    main()
