"""World-Cup day (paper §VI): a full day of geo-distributed dispatching.

Replays a World-Cup-like day of requests at four front-ends against
three data centers priced at Houston / Mountain View / Atlanta
electricity, with one-level TUFs — the paper's §VI study.  Prints the
per-hour net profit of Optimized vs Balanced (Fig. 6), the Request1
allocation per data center (Fig. 7), and the powered-on server counts.

Run:  python examples/worldcup_day.py
"""

import numpy as np

from repro.experiments.section6 import section6_experiment
from repro.sim.metrics import (
    dc_dispatch_series,
    net_profit_series,
    powered_on_series,
)
from repro.utils.tables import render_table


def main() -> None:
    exp = section6_experiment()
    print(exp.description, "\n")
    results = exp.run_comparison()
    opt, bal = results["optimized"], results["balanced"]

    profit_rows = [
        [t, float(net_profit_series(opt.records)[t]),
         float(net_profit_series(bal.records)[t]),
         float(opt.records[t].prices.min()),
         float(opt.records[t].prices.max())]
        for t in range(exp.trace.num_slots)
    ]
    print(render_table(
        ["hour", "optimized ($)", "balanced ($)", "min price", "max price"],
        profit_rows,
        title="Hourly net profit (Fig. 6)",
        float_fmt=",.2f",
    ))
    print(f"\nDay totals: optimized ${opt.total_net_profit:,.0f}  "
          f"balanced ${bal.total_net_profit:,.0f}  "
          f"(+{(opt.total_net_profit / bal.total_net_profit - 1) * 100:.1f}%)")

    print("\nRequest1 allocation per data center, day totals (Fig. 7):")
    for name, result in results.items():
        totals = [
            float(np.sum(dc_dispatch_series(result.records, k=0, l=l)))
            for l in range(exp.topology.num_datacenters)
        ]
        labels = [dc.name for dc in exp.topology.datacenters]
        parts = ", ".join(f"{lab}={tot:,.0f}" for lab, tot in zip(labels, totals))
        print(f"  {name:>9s}: {parts}")
    print("  (datacenter2 is the farthest from every front-end and is "
          "starved by Optimized, as in the paper)")

    powered = powered_on_series(opt.records)
    print("\nPowered-on servers per hour (optimized, right-sized):")
    print("  " + " ".join(f"{int(row.sum()):2d}" for row in powered))


if __name__ == "__main__":
    main()
