"""Fault tolerance: per-slot re-planning around server outages.

Because the paper's controller re-solves every slot, server failures fit
the model directly: each hour an availability process reports the live
fleet, the optimizer plans against the degraded topology, and failed
servers carry nothing.  This example injects Markov up/down server
churn into the §VI World-Cup day at three severities and reports the
profit impact, then renders the full markdown comparison report.

Run:  python examples/fault_tolerance.py
"""

from repro import (
    MarkovServerAvailability,
    ProfitAwareOptimizer,
    comparison_report,
    run_simulation,
    run_with_failures,
)
from repro.experiments.section6 import section6_experiment
from repro.sim.metrics import powered_on_series
from repro.utils.tables import render_table


def main() -> None:
    exp = section6_experiment()
    baseline = run_simulation(
        ProfitAwareOptimizer(exp.topology), exp.trace, exp.market
    )

    rows = [["no failures", baseline.total_net_profit, 100.0,
             float(exp.topology.num_servers)]]
    results = {"optimized": baseline}
    for label, fail, repair in (
        ("mild churn", 0.05, 0.6),
        ("heavy churn", 0.25, 0.4),
        ("catastrophic", 0.60, 0.2),
    ):
        availability = MarkovServerAvailability(
            exp.topology, fail_prob=fail, repair_prob=repair, seed=13
        )
        result = run_with_failures(
            exp.topology, lambda t: ProfitAwareOptimizer(t),
            exp.trace, exp.market, availability,
        )
        results[label] = result
        up = powered_on_series(result.records).sum(axis=1)
        rows.append([
            label,
            result.total_net_profit,
            result.total_net_profit / baseline.total_net_profit * 100.0,
            float(up.mean()),
        ])

    print(render_table(
        ["scenario", "day net profit ($)", "% of failure-free",
         "avg servers in use"],
        rows,
        title="Server churn on the World-Cup day (optimizer re-plans hourly)",
        float_fmt=",.1f",
    ))
    print("\n--- markdown report (excerpt) ---\n")
    report = comparison_report(
        {"optimized": baseline, "heavy-churn": results["heavy churn"]},
        exp.topology,
        title="Failure-injection comparison",
        baseline="optimized",
    )
    print("\n".join(report.splitlines()[:18]))


if __name__ == "__main__":
    main()
