"""Setuptools entry point.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (which build a wheel) are unavailable;
keeping a ``setup.py`` lets ``pip install -e .`` take the legacy
``setup.py develop`` path.  Metadata mirrors ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Profit-aware load balancing for distributed cloud data centers "
        "(IPDPS-W 2013 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
