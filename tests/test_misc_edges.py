"""Edge-case tests sweeping remaining corners of the public surface."""

import numpy as np
import pytest

from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer, SolveStats
from repro.core.plan import DispatchPlan
from repro.des.engine import Engine
from repro.solvers.base import SolverError
from repro.utils.tables import render_table


class TestEngineEdges:
    def test_run_with_max_events(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: seen.append(i))
        engine.run(max_events=2)
        assert seen == [0, 1]
        assert engine.pending == 3

    def test_run_until_with_max_events(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: seen.append(i))
        engine.run_until(10.0, max_events=3)
        assert seen == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_cancelled_events_cleared_from_pending(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        engine.run_until(2.0)
        assert engine.pending == 0


class TestRenderTableEdges:
    def test_no_title(self):
        text = render_table(["a"], [[1]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "a"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2  # header + separator

    def test_wide_cells_expand_columns(self):
        text = render_table(["x"], [["a-very-long-cell-value"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)


class TestPlanEdges:
    def test_dc_of_server_mapping(self, small_topology):
        plan = DispatchPlan.empty(small_topology)
        mapping = plan._dc_of_server()
        assert mapping.tolist() == [0, 0, 0, 1, 1]

    def test_server_service_rates_matrix(self, small_topology):
        plan = DispatchPlan.empty(small_topology)
        rates = plan.server_service_rates()
        assert rates.shape == (2, 5)
        # dc1 servers carry dc1's mu; dc2 servers dc2's.
        assert rates[0, 0] == small_topology.service_rates[0, 0]
        assert rates[0, 4] == small_topology.service_rates[0, 1]

    def test_shares_sum_tolerance(self, small_topology):
        # A hair over 1.0 from float noise is tolerated...
        shares = np.zeros((2, 5))
        shares[:, 0] = [0.5, 0.5 + 1e-8]
        DispatchPlan(small_topology, np.zeros((2, 2, 5)), shares)
        # ...a real violation is not.
        shares[:, 0] = [0.6, 0.6]
        with pytest.raises(ValueError):
            DispatchPlan(small_topology, np.zeros((2, 2, 5)), shares)


class TestOptimizerEdges:
    def test_zero_arrivals_zero_profit(self, small_topology):
        opt = ProfitAwareOptimizer(small_topology)
        plan = opt.plan_slot(np.zeros((2, 2)), np.array([0.1, 0.1]))
        assert plan.served_rates().sum() == pytest.approx(0.0, abs=1e-9)
        assert plan.powered_on_per_dc().sum() == 0

    def test_stats_dataclass_fields(self, small_topology):
        opt = ProfitAwareOptimizer(small_topology)
        opt.plan_slot(np.full((2, 2), 5.0), np.array([0.1, 0.1]))
        stats = opt.last_stats
        assert isinstance(stats, SolveStats)
        assert stats.method == "lp"
        assert stats.num_constraints > 0

    def test_single_frontend_single_class(self, single_class_topology):
        opt = ProfitAwareOptimizer(single_class_topology)
        plan = opt.plan_slot(np.array([[250.0]]), np.array([0.07]))
        assert plan.meets_deadlines()
        # 4 servers x (mu - 1/D) bounds the admission.
        cap = 4 * (150.0 - 1.0 / 0.02)
        assert plan.served_rates()[0] <= cap + 1e-6

    def test_deadline_margin_reduces_admission(self, single_class_topology):
        arrivals = np.array([[1000.0]])
        prices = np.array([0.07])
        full = ProfitAwareOptimizer(single_class_topology).plan_slot(
            arrivals, prices)
        tight = ProfitAwareOptimizer(single_class_topology, config=OptimizerConfig(deadline_margin=0.5)).plan_slot(arrivals, prices)
        assert tight.served_rates()[0] < full.served_rates()[0]


class TestSolverErrorType:
    def test_solver_error_is_runtime_error(self):
        assert issubclass(SolverError, RuntimeError)
