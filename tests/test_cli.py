"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.cli_registry import (
    get_subcommand,
    register_subcommand,
    registered_subcommands,
)


class TestRegistry:
    def test_all_commands_registered(self):
        names = [sub.name for sub in registered_subcommands()]
        assert len(set(names)) == len(names)
        for expected in ("prices", "section5", "section6", "section7",
                         "validate", "sweep", "reproduce", "trace",
                         "lint", "audit", "bench", "stream"):
            assert expected in names, expected

    def test_duplicate_name_different_function_rejected(self):
        existing = get_subcommand("prices")

        with pytest.raises(ValueError, match="already registered"):
            @register_subcommand("prices", help_text="imposter")
            def other_run(args):
                return 0

        # Re-decorating the same function object is an idempotent no-op.
        again = register_subcommand("prices", help_text=existing.help_text)(
            existing.run
        )
        assert again is existing.run
        assert get_subcommand("prices").run is existing.run

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_subcommand("does-not-exist")

    def test_build_parser_idempotent(self):
        first = build_parser().parse_args(["stream", "--slots", "3"])
        second = build_parser().parse_args(["stream", "--slots", "3"])
        assert first.slots == second.slots == 3

    def test_stream_parse_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.scenario == "section6"
        assert args.policy == "drift"
        assert args.ticks_per_slot == 12
        assert args.synthesis == "fluid"
        assert args.estimation == "oracle"

    def test_stream_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--policy", "chaotic"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_section5_regime_choices(self):
        args = build_parser().parse_args(["section5", "--regime", "high"])
        assert args.regime == "high"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["section5", "--regime", "medium"])

    def test_section7_scales(self):
        args = build_parser().parse_args(
            ["section7", "--load-scale", "2.0", "--capacity-scale", "1.5"]
        )
        assert args.load_scale == 2.0
        assert args.capacity_scale == 1.5


class TestCommands:
    def test_prices(self, capsys):
        assert main(["prices"]) == 0
        out = capsys.readouterr().out
        assert "houston" in out
        assert "$/kWh" in out

    def test_section5(self, capsys):
        assert main(["section5", "--regime", "low"]) == 0
        out = capsys.readouterr().out
        assert "optimized" in out and "balanced" in out

    def test_section7(self, capsys):
        assert main(["section7"]) == 0
        out = capsys.readouterr().out
        assert "net profit" in out
        assert "o=optimized" in out

    def test_validate(self, capsys):
        assert main(["validate", "--utilization", "0.5",
                     "--horizon", "300"]) == 0
        out = capsys.readouterr().out
        assert "Eq.1" in out

    def test_validate_bad_utilization(self, capsys):
        assert main(["validate", "--utilization", "1.5"]) == 2
        assert "utilization" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "--servers", "2,4"]) == 0
        out = capsys.readouterr().out
        assert "fleet size" in out

    def test_sweep_bad_list(self, capsys):
        assert main(["sweep", "--servers", "two,four"]) == 2
        assert "servers" in capsys.readouterr().err

    def test_sweep_rejects_nonpositive(self, capsys):
        assert main(["sweep", "--servers", "0,2"]) == 2

    def test_trace_writes_jsonl(self, capsys, tmp_path):
        out = tmp_path / "traces.jsonl"
        assert main(["trace", "--scenario", "section6",
                     "--slots", "4", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "warm-start outcomes" in stdout
        assert "hit=" in stdout  # simplex warm-starts across slots

        from repro.obs import read_traces
        traces = read_traces(out)
        assert [t.slot for t in traces] == [0, 1, 2, 3]
        for t in traces:
            assert t.phase_time_total <= t.total_time + 1e-9

    def test_trace_parallel_merges(self, capsys):
        assert main(["trace", "--scenario", "section6",
                     "--slots", "4", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-slot solver traces" in out

    def test_trace_rejects_bad_workers(self, capsys):
        assert main(["trace", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "--workers must be >= 1" in err

    def test_stream_runs_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "stream.json"
        assert main(["stream", "--scenario", "section6", "--slots", "4",
                     "--ticks-per-slot", "4", "--policy", "drift",
                     "--json", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "drift policy" in stdout and "full_solves=" in stdout
        summary = json.loads(out.read_text())
        assert summary["policy"] == "drift"
        assert summary["slots"] == 4
        assert summary["full_solves"] >= 1

    def test_stream_rejects_bad_ticks(self, capsys):
        assert main(["stream", "--ticks-per-slot", "0"]) == 2
        assert "ticks-per-slot" in capsys.readouterr().err

    def test_reproduce_writes_series(self, capsys, tmp_path):
        out = tmp_path / "results"
        assert main(["reproduce", "--out", str(out), "--skip-slow"]) == 0
        written = {p.name for p in out.iterdir()}
        expected = {
            "fig01_prices.txt", "fig04_low.txt", "fig04_high.txt",
            "fig05_traces.txt", "fig06_worldcup_profit.txt",
            "fig07_dispatch.txt", "fig08_google_profit.txt",
            "fig09_allocations.txt", "fig10_low.txt", "fig10_high.txt",
        }
        assert expected <= written
        # Fig. 11 skipped under --skip-slow.
        assert "fig11_computation_time.txt" not in written
        content = (out / "fig06_worldcup_profit.txt").read_text()
        assert "optimized" in content and "balanced" in content
