"""Tests for the spot-market spike overlay."""

import numpy as np
import pytest

from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace, houston_profile
from repro.market.spot import spike_overlay, spot_market


class TestSpikeOverlay:
    def test_prices_only_scale_up(self):
        base = houston_profile()
        spot = spike_overlay(base, seed=1)
        ratio = spot.prices / base.prices
        assert np.all((np.isclose(ratio, 1.0)) | (np.isclose(ratio, 6.0)))

    def test_no_spikes_when_prob_zero(self):
        base = houston_profile()
        spot = spike_overlay(base, spike_prob=0.0, seed=1)
        assert np.array_equal(spot.prices, base.prices)

    def test_always_spiked(self):
        base = PriceTrace("x", np.full(10, 0.1))
        spot = spike_overlay(base, spike_prob=1.0, persist_prob=1.0,
                             magnitude=3.0)
        assert np.allclose(spot.prices, 0.3)

    def test_persistence_creates_runs(self):
        base = PriceTrace("x", np.full(5000, 0.1))
        sticky = spike_overlay(base, spike_prob=0.05, persist_prob=0.9,
                               seed=3)
        flip = np.diff((sticky.prices > 0.15).astype(int))
        spike_slots = int((sticky.prices > 0.15).sum())
        entries = int((flip == 1).sum())
        # Mean run length ~ 1/(1-persist) = 10 >> 1.
        assert spike_slots / max(entries, 1) > 4.0

    def test_deterministic(self):
        base = houston_profile()
        a = spike_overlay(base, seed=9).prices
        b = spike_overlay(base, seed=9).prices
        assert np.array_equal(a, b)

    def test_magnitude_validated(self):
        with pytest.raises(ValueError):
            spike_overlay(houston_profile(), magnitude=1.0)

    def test_name_tagged(self):
        assert "(spot)" in spike_overlay(houston_profile()).location


class TestSpotMarket:
    def test_independent_spikes_per_location(self):
        market = MultiElectricityMarket([
            PriceTrace("a", np.full(200, 0.1)),
            PriceTrace("b", np.full(200, 0.1)),
        ])
        spot = spot_market(market, spike_prob=0.3, persist_prob=0.3, seed=5)
        spikes = spot.as_matrix() > 0.15
        # Both locations spike, but not in lockstep.
        assert spikes[0].any() and spikes[1].any()
        assert np.any(spikes[0] != spikes[1])

    def test_structure_preserved(self):
        market = MultiElectricityMarket([houston_profile()])
        spot = spot_market(market)
        assert spot.num_locations == 1
        assert spot.num_slots == 24

    def test_optimizer_gains_more_under_spikes(self):
        # The optimizer's edge over Balanced grows when prices spike
        # independently across sites (there is more to dodge).
        from repro.experiments.section7 import section7_experiment
        from repro.sim.slotted import compare_dispatchers
        exp = section7_experiment()
        calm = compare_dispatchers(
            [exp.optimizer(), exp.balanced()], exp.trace, exp.market
        )
        spiky_market = spot_market(exp.market, spike_prob=0.3,
                                   persist_prob=0.3, magnitude=8.0, seed=11)
        spiky = compare_dispatchers(
            [exp.optimizer(), exp.balanced()], exp.trace, spiky_market
        )
        calm_gap = (calm["optimized"].total_net_profit
                    - calm["balanced"].total_net_profit)
        spiky_gap = (spiky["optimized"].total_net_profit
                     - spiky["balanced"].total_net_profit)
        assert calm_gap > 0
        assert spiky_gap > 0
        # Both still profitable; optimizer keeps its lead.
        assert spiky["optimized"].total_net_profit > 0
