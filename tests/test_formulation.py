"""Tests for the slot-problem formulations (LP and MILP builders)."""

import numpy as np
import pytest

from repro.core.formulation import (
    DEADLINE_SAFETY,
    SlotInputs,
    feasibility_margin,
    fixed_level_lp,
    multilevel_milp,
)
from repro.core.objective import evaluate_plan
from repro.solvers.branch_bound import solve_milp
from repro.solvers.linprog import solve_lp


def slot_inputs(topology, arrival=40.0, price=0.1):
    K, S = topology.num_classes, topology.num_frontends
    L = topology.num_datacenters
    return SlotInputs(
        topology=topology,
        arrivals=np.full((K, S), arrival),
        prices=np.full((L,), price),
        slot_duration=1.0,
    )


class TestSlotInputs:
    def test_shape_validation(self, small_topology):
        with pytest.raises(ValueError, match="arrivals"):
            SlotInputs(small_topology, np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError, match="prices"):
            SlotInputs(small_topology, np.zeros((2, 2)), np.zeros(3))

    def test_cost_per_request(self, small_topology):
        inputs = slot_inputs(small_topology, price=0.1)
        cost = inputs.cost_per_request()
        assert cost.shape == (2, 2, 2)
        # class 0, fe 0, dc 0: energy 2e-4*0.1 + transfer 0.001*300
        assert cost[0, 0, 0] == pytest.approx(2e-5 + 0.3)

    def test_lambda_max_caps(self, small_topology):
        inputs = slot_inputs(small_topology, arrival=1e9)
        lam_max = inputs.lambda_max()
        # Bounded by raw data-center capacity, not offered load.
        assert lam_max[0, 0] == pytest.approx(3 * 120.0)

    def test_feasibility_margin(self, small_topology):
        margin = feasibility_margin(small_topology)
        assert margin.shape == (2,)
        assert np.all(margin > 0)

    def test_infeasible_topology_detected(self, small_topology):
        # Shrink deadlines so minimum shares cannot fit on one server.
        from repro.core.request import RequestClass
        from repro.core.tuf import ConstantTUF
        tight = tuple(
            RequestClass(rc.name, ConstantTUF(rc.tuf.max_value, 0.004),
                         rc.transfer_unit_cost)
            for rc in small_topology.request_classes
        )
        import dataclasses
        bad = dataclasses.replace(small_topology, request_classes=tight)
        assert np.any(feasibility_margin(bad) < 0)
        with pytest.raises(ValueError, match="infeasible topology"):
            fixed_level_lp(slot_inputs(bad))


class TestFixedLevelLP:
    def test_plan_respects_all_constraints(self, small_topology):
        inputs = slot_inputs(small_topology)
        lp, decoder = fixed_level_lp(inputs)
        sol = solve_lp(lp).require_ok()
        plan = decoder(sol.x)
        assert plan.meets_deadlines()
        # No overdispatch per (k, s).
        assert np.all(plan.rates.sum(axis=2) <= inputs.arrivals + 1e-6)
        # Share budget.
        assert np.all(plan.shares.sum(axis=0) <= 1.0 + 1e-9)

    def test_lp_objective_matches_evaluation(self, small_topology):
        # For one-level TUFs the LP objective equals realized net profit.
        inputs = slot_inputs(small_topology)
        lp, decoder = fixed_level_lp(inputs)
        sol = solve_lp(lp).require_ok()
        plan = decoder(sol.x)
        out = evaluate_plan(plan, inputs.arrivals, inputs.prices,
                            inputs.slot_duration)
        assert out.net_profit == pytest.approx(-sol.objective, rel=1e-6)

    def test_aggregated_equals_per_server(self, small_topology):
        inputs = slot_inputs(small_topology, arrival=60.0)
        lp_a, _ = fixed_level_lp(inputs, per_server=False)
        lp_p, _ = fixed_level_lp(inputs, per_server=True)
        obj_a = solve_lp(lp_a).require_ok().objective
        obj_p = solve_lp(lp_p).require_ok().objective
        assert obj_a == pytest.approx(obj_p, rel=1e-8)

    def test_unprofitable_requests_dropped(self, single_class_topology):
        # Price so high that serving loses money: optimal rate is zero.
        inputs = SlotInputs(
            single_class_topology,
            arrivals=np.array([[100.0]]),
            prices=np.array([1e6]),
        )
        lp, decoder = fixed_level_lp(inputs)
        sol = solve_lp(lp).require_ok()
        plan = decoder(sol.x)
        assert plan.served_rates()[0] == pytest.approx(0.0, abs=1e-9)

    def test_levels_shape_validated(self, small_topology):
        inputs = slot_inputs(small_topology)
        with pytest.raises(ValueError, match="levels"):
            fixed_level_lp(inputs, levels=np.zeros((3, 3), dtype=int))

    def test_level_out_of_range(self, small_topology):
        inputs = slot_inputs(small_topology)
        with pytest.raises(ValueError, match="out of range"):
            fixed_level_lp(inputs, levels=np.full((2, 2), 5, dtype=int))

    def test_capacity_saturation(self, single_class_topology):
        # Offered load above total capacity: LP serves at most capacity.
        inputs = SlotInputs(
            single_class_topology,
            arrivals=np.array([[10_000.0]]),
            prices=np.array([0.1]),
        )
        lp, decoder = fixed_level_lp(inputs)
        plan = decoder(solve_lp(lp).require_ok().x)
        max_possible = 4 * 150.0  # 4 servers at mu=150
        assert plan.served_rates()[0] < max_possible
        assert plan.served_rates()[0] > 0.9 * (max_possible - 4 / 0.02)


class TestMultilevelMILP:
    def test_milp_plan_feasible(self, multilevel_topology):
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        mip, decoder = multilevel_milp(inputs)
        sol = solve_milp(mip, "highs").require_ok()
        plan = decoder(sol.x)
        assert plan.meets_deadlines()
        assert np.all(plan.rates.sum(axis=2) <= inputs.arrivals + 1e-6)

    def test_milp_objective_matches_evaluation(self, multilevel_topology):
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        mip, decoder = multilevel_milp(inputs)
        sol = solve_milp(mip, "highs").require_ok()
        plan = decoder(sol.x)
        out = evaluate_plan(plan, inputs.arrivals, inputs.prices)
        # Realized profit can only match or beat the MILP's plan (delays
        # strictly inside a better level earn more).
        assert out.net_profit >= -sol.objective - 1e-6

    def test_milp_beats_worst_level_lp(self, multilevel_topology):
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        mip, _ = multilevel_milp(inputs)
        milp_obj = solve_milp(mip, "highs").require_ok().objective
        # LP pinned at the last (cheapest) level everywhere.
        K, L = 2, 2
        last = np.array([[1, 1], [1, 1]])
        lp, _ = fixed_level_lp(inputs, levels=last)
        lp_obj = solve_lp(lp).require_ok().objective
        assert milp_obj <= lp_obj + 1e-9

    def test_milp_equals_best_fixed_level_enumeration(self, multilevel_topology):
        # Exhaustive check on a small instance: the MILP must match the
        # best fixed-level LP over all 2^(K*L) level assignments.
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        import itertools
        best = np.inf
        for combo in itertools.product([0, 1], repeat=4):
            levels = np.asarray(combo).reshape(2, 2)
            lp, _ = fixed_level_lp(inputs, levels=levels)
            sol = solve_lp(lp)
            if sol.ok:
                best = min(best, sol.objective)
        mip, _ = multilevel_milp(inputs)
        milp_obj = solve_milp(mip, "highs").require_ok().objective
        assert milp_obj == pytest.approx(best, rel=1e-7)

    def test_tight_bounds_equals_historical_envelope(
        self, multilevel_topology
    ):
        # The deadline-aware per-level McCormick caps (tight_bounds,
        # now the default) strengthen the B&B node relaxations but must
        # not cut any integer-feasible point: both MILPs reach the same
        # optimum, on both backends.
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        mip_tight, _ = multilevel_milp(inputs)
        mip_loose, _ = multilevel_milp(inputs, tight_bounds=False)
        for method in ("highs", "bb"):
            obj_tight = solve_milp(mip_tight, method).require_ok().objective
            obj_loose = solve_milp(mip_loose, method).require_ok().objective
            assert obj_tight == pytest.approx(obj_loose, rel=1e-7)

    def test_tight_bounds_strengthens_relaxation(self, multilevel_topology):
        # The tight caps must never *loosen* the model: every variable
        # upper bound and every McCormick row coefficient is at least as
        # restrictive as the historical envelope's.
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        mip_tight, _ = multilevel_milp(inputs)
        mip_loose, _ = multilevel_milp(inputs, tight_bounds=False)
        assert np.all(mip_tight.lp.upper <= mip_loose.lp.upper + 1e-12)

    def test_bb_and_highs_agree(self, multilevel_topology):
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[5000.0], [4000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        mip, _ = multilevel_milp(inputs)
        obj_bb = solve_milp(mip, "bb").require_ok().objective
        obj_hi = solve_milp(mip, "highs").require_ok().objective
        assert obj_bb == pytest.approx(obj_hi, rel=1e-7)

    def test_deadline_safety_applied(self, small_topology):
        inputs = slot_inputs(small_topology)
        lp, decoder = fixed_level_lp(inputs)
        plan = decoder(solve_lp(lp).require_ok().x)
        delays = plan.delays()
        for k, rc in enumerate(small_topology.request_classes):
            loaded = ~np.isnan(delays[k])
            if np.any(loaded):
                assert np.all(
                    delays[k][loaded]
                    <= rc.deadline * (1 - DEADLINE_SAFETY / 2)
                )
