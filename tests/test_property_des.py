"""Property tests for the DES event queue after the batching refactor.

The array-backed heap in :class:`repro.des.engine.Engine` must be
observationally identical to the pre-refactor object-based
:class:`repro.des.reference.ReferenceEngine`: randomized
schedule/cancel/step/run sequences are replayed against both engines
and every observable — event firing order, clock values, monotonicity,
``events_processed``, ``pending`` — must agree exactly.  A second group
pins the batched :class:`~repro.des.processes.PoissonArrivals` sampling
to the per-call realization, bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.engine import Engine
from repro.des.measurements import SojournStats, WelfordAccumulator
from repro.des.processes import PoissonArrivals
from repro.des.reference import ReferenceEngine
from repro.des.server import FCFSQueueServer
from repro.utils.rng import as_generator

# One randomized operation against both engines.  Weights skew toward
# scheduling so cancel/step/run_until exercise non-trivial heaps.
op_strategy = st.one_of(
    st.tuples(st.just("schedule"),
              st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("schedule"),
              st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("schedule_at"),
              st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("cancel"), st.integers(0, 200)),
    st.tuples(st.just("step"), st.just(0)),
    st.tuples(st.just("run_until"),
              st.floats(0.0, 15.0, allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("run_max"), st.integers(1, 5)),
)


class _Driver:
    """Applies one op sequence to an engine, recording every observable."""

    def __init__(self, engine):
        self.engine = engine
        self.log = []
        self.handles = []
        self._label = 0

    def _fire(self, label):
        def action():
            self.log.append((label, self.engine.now))
        return action

    def apply(self, op):
        kind, arg = op
        engine = self.engine
        if kind == "schedule":
            self.handles.append(engine.schedule(arg, self._fire(self._label)))
            self._label += 1
        elif kind == "schedule_at":
            target = max(arg, engine.now)
            self.handles.append(
                engine.schedule_at(target, self._fire(self._label)))
            self._label += 1
        elif kind == "cancel":
            if self.handles:
                self.handles[arg % len(self.handles)].cancel()
        elif kind == "step":
            self.log.append(("step->", engine.step()))
        elif kind == "run_until":
            engine.run_until(engine.now + arg)
        elif kind == "run_max":
            engine.run(max_events=arg)
        else:  # pragma: no cover - strategy is exhaustive
            raise AssertionError(kind)

    def observables(self):
        return (self.log, self.engine.now, self.engine.events_processed,
                self.engine.pending)


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=40))
def test_engines_observationally_identical(ops):
    new = _Driver(Engine())
    ref = _Driver(ReferenceEngine())
    for op in ops:
        new.apply(op)
        ref.apply(op)
        assert new.engine.now == ref.engine.now
        assert new.engine.events_processed == ref.engine.events_processed
        assert new.engine.pending == ref.engine.pending
    # Drain both completely: identical firing order including ties.
    new.engine.run()
    ref.engine.run()
    assert new.observables() == ref.observables()


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=40))
def test_clock_is_monotone_and_counts_match_log(ops):
    driver = _Driver(Engine())
    last_now = 0.0
    for op in ops:
        driver.apply(op)
        assert driver.engine.now >= last_now
        last_now = driver.engine.now
    driver.engine.run()
    fired = [entry for entry in driver.log if entry[0] != "step->"]
    steps = sum(1 for entry in driver.log
                if entry == ("step->", True))
    assert driver.engine.events_processed == len(fired)
    assert steps <= len(fired)
    # Firing times are non-decreasing (ties broken by schedule order).
    times = [t for _, t in fired]
    assert times == sorted(times)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       rate=st.floats(0.2, 0.95, allow_nan=False),
       horizon=st.floats(20.0, 200.0, allow_nan=False))
def test_mm1_identical_across_engines(seed, rate, horizon):
    """A full M/M/1 run must not depend on which engine drives it."""

    def run(engine_cls):
        engine = engine_cls()
        server = FCFSQueueServer(engine, rate=1.0)
        arrivals = PoissonArrivals(engine, rate=rate, sink=server.arrive,
                                   seed=seed, stop_time=horizon)
        engine.run_until(horizon)
        engine.run()
        return (arrivals.generated, engine.events_processed,
                server.stats.count, server.stats.mean)

    assert run(Engine) == run(ReferenceEngine)


class TestBatchedSamplingEquivalence:
    """Batched draws must be bit-identical to the per-call stream."""

    @staticmethod
    def _per_call_realization(seed, rate, stop_time):
        """The pre-refactor sampling loop, reproduced literally."""
        rng = as_generator(seed)
        now = 0.0
        events = []
        while True:
            gap = float(rng.exponential(1.0 / rate))
            if now + gap >= stop_time:
                break
            now += gap
            events.append((now, float(rng.exponential(1.0))))
        return events

    @pytest.mark.parametrize("batch", [1, 2, 7, 1024])
    def test_bit_identical_for_any_batch_size(self, batch):
        seed, rate, stop = 1234, 2.5, 60.0
        engine = Engine()
        seen = []
        PoissonArrivals(engine, rate=rate,
                        sink=lambda w: seen.append((engine.now, w)),
                        seed=seed, stop_time=stop, batch=batch)
        engine.run()
        expected = self._per_call_realization(seed, rate, stop)
        assert len(seen) == len(expected)
        np.testing.assert_array_equal(np.asarray(seen), np.asarray(expected))

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="batch"):
            PoissonArrivals(Engine(), rate=1.0, sink=lambda w: None,
                            seed=0, batch=0)


class TestMeasurementEquivalence:
    """Inlined SojournStats must match the standalone Welford fold."""

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=100,
    ))
    def test_sojourn_stats_matches_welford(self, values):
        acc = WelfordAccumulator()
        stats = SojournStats()
        for v in values:
            acc.add(v)
            stats.record(0.0, v)
        assert stats.count == acc.count
        assert stats.mean == acc.mean
        assert stats.std == acc.std
        assert stats.stderr == acc.stderr

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(
        st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False),
        min_size=0, max_size=60,
    ), split=st.integers(0, 60))
    def test_add_batch_matches_sequential(self, values, split):
        split = min(split, len(values))
        sequential = WelfordAccumulator()
        for v in values:
            sequential.add(v)
        batched = WelfordAccumulator()
        batched.add_batch(np.asarray(values[:split]))
        batched.add_batch(np.asarray(values[split:]))
        assert batched.count == sequential.count
        assert batched.mean == pytest.approx(sequential.mean, abs=1e-9)
        assert batched.variance == pytest.approx(sequential.variance,
                                                 rel=1e-6, abs=1e-9)
