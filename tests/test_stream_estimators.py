"""Tests for the online rate estimators (repro.stream.estimators)."""

import numpy as np
import pytest

from repro.stream.estimators import (
    DriftDetector,
    EWMAEstimator,
    RateEstimatorBank,
    SlidingWindowEstimator,
)
from repro.utils.rng import as_generator

SHAPE = (2, 3)


def poisson_rate_stream(true_rates, duration, ticks, seed):
    """Observed-rate samples: Poisson counts over `duration`, as rates."""
    rng = as_generator(seed)
    for _ in range(ticks):
        yield rng.poisson(true_rates * duration) / duration


class TestEWMA:
    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAEstimator(0.0, SHAPE)
        with pytest.raises(ValueError):
            EWMAEstimator(1.5, SHAPE)

    def test_first_observation_initializes_directly(self):
        est = EWMAEstimator(0.1, SHAPE)
        assert not est.initialized
        first = np.full(SHAPE, 42.0)
        est.observe(first)
        np.testing.assert_allclose(est.estimate, first)

    def test_converges_on_stationary_arrivals(self):
        true = np.array([[200.0, 50.0, 10.0], [80.0, 300.0, 5.0]])
        est = EWMAEstimator(0.05, SHAPE)
        for obs in poisson_rate_stream(true, duration=1.0, ticks=400,
                                       seed=7):
            est.observe(obs)
        rel = np.abs(est.estimate - true) / true
        assert float(rel.max()) < 0.2
        assert float(rel.mean()) < 0.1

    def test_shape_mismatch_rejected(self):
        est = EWMAEstimator(0.5, SHAPE)
        with pytest.raises(ValueError):
            est.observe(np.zeros((3, 2)))


class TestSlidingWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowEstimator(0, SHAPE)

    def test_mean_over_partial_and_full_window(self):
        est = SlidingWindowEstimator(3, SHAPE)
        np.testing.assert_allclose(est.estimate, np.zeros(SHAPE))
        est.observe(np.full(SHAPE, 1.0))
        np.testing.assert_allclose(est.estimate, np.full(SHAPE, 1.0))
        est.observe(np.full(SHAPE, 3.0))
        np.testing.assert_allclose(est.estimate, np.full(SHAPE, 2.0))
        for v in (5.0, 7.0, 9.0):
            est.observe(np.full(SHAPE, v))
        # Window now holds [5, 7, 9].
        np.testing.assert_allclose(est.estimate, np.full(SHAPE, 7.0))

    def test_converges_on_stationary_arrivals(self):
        true = np.array([[150.0, 40.0, 25.0], [60.0, 90.0, 12.0]])
        est = SlidingWindowEstimator(64, SHAPE)
        for obs in poisson_rate_stream(true, duration=2.0, ticks=64,
                                       seed=11):
            est.observe(obs)
        rel = np.abs(est.estimate - true) / true
        assert float(rel.max()) < 0.25
        assert float(rel.mean()) < 0.1


class TestStepTracking:
    def test_step_change_tracked_within_bounded_lag(self):
        """After a 2x step, the window estimate must be within 5% of the
        new level in at most `window` ticks (fluid observations)."""
        window = 6
        bank = RateEstimatorBank(SHAPE, window=window, alpha=0.2)
        low = np.full(SHAPE, 100.0)
        high = np.full(SHAPE, 200.0)
        for _ in range(20):
            bank.observe(low)
        lag = None
        for i in range(1, 3 * window + 1):
            bank.observe(high)
            if np.all(np.abs(bank.rate - high) <= 0.05 * high):
                lag = i
                break
        assert lag is not None and lag <= window, lag

    def test_ewma_lags_behind_window(self):
        bank = RateEstimatorBank(SHAPE, window=4, alpha=0.1)
        low, high = np.full(SHAPE, 100.0), np.full(SHAPE, 300.0)
        for _ in range(30):
            bank.observe(low)
        for _ in range(4):
            bank.observe(high)
        # The fast window has fully switched; the slow EWMA has not.
        assert float(bank.rate.mean()) == pytest.approx(300.0)
        assert float(bank.baseline.mean()) < 300.0


class TestDriftDetection:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(0.0)
        with pytest.raises(ValueError):
            DriftDetector(0.1, patience=0)

    def test_patience_gates_single_spikes(self):
        det = DriftDetector(0.5, patience=2)
        assert det.update(0.9) is False  # first over-threshold tick
        assert det.update(0.1) is False  # streak broken
        assert det.update(0.9) is False
        assert det.update(0.9) is True   # two consecutive -> fire
        assert det.events == 1

    def test_step_change_fires_drift_and_rearms(self):
        bank = RateEstimatorBank(SHAPE, window=4, alpha=0.05,
                                 drift_threshold=0.25, drift_patience=2)
        low, high = np.full(SHAPE, 100.0), np.full(SHAPE, 400.0)
        for _ in range(40):
            bank.observe(low)
        assert bank.drift_events == 0
        fired = [bank.observe(high) for _ in range(10)]
        assert any(fired)
        # Re-anchoring keeps it to few events, not one per tick.
        assert 1 <= bank.drift_events <= 2

    def test_pinned_false_positive_behavior_under_fixed_seed(self):
        """Stationary Poisson arrivals, fixed seed: the default-tuned
        bank must report exactly zero drift events over 500 ticks."""
        true = np.array([[220.0, 80.0, 35.0], [140.0, 60.0, 18.0]])
        bank = RateEstimatorBank(SHAPE, window=6, alpha=0.2,
                                 drift_threshold=0.25, drift_patience=2)
        events = 0
        for obs in poisson_rate_stream(true, duration=1.0, ticks=500,
                                       seed=1998):
            events += bool(bank.observe(obs))
        assert events == 0
        assert bank.drift_events == 0

    def test_pinned_event_count_with_tight_threshold(self):
        """Same stream, deliberately over-sensitive threshold: the event
        count is deterministic under the fixed seed (pinned so any
        behavioural change to the detector is visible)."""
        true = np.array([[220.0, 80.0, 35.0], [140.0, 60.0, 18.0]])
        bank = RateEstimatorBank(SHAPE, window=6, alpha=0.2,
                                 drift_threshold=0.02, drift_patience=2)
        events = 0
        for obs in poisson_rate_stream(true, duration=1.0, ticks=500,
                                       seed=1998):
            events += bool(bank.observe(obs))
        assert events == bank.drift_events
        assert events == 18


class TestBankBookkeeping:
    def test_estimator_error_tracks_prediction_quality(self):
        bank = RateEstimatorBank(SHAPE, window=4)
        bank.observe(np.full(SHAPE, 100.0))
        assert bank.last_rel_error == 0.0  # no estimate existed yet
        bank.observe(np.full(SHAPE, 100.0))
        assert bank.last_rel_error == pytest.approx(0.0)
        bank.observe(np.full(SHAPE, 150.0))
        assert bank.last_rel_error == pytest.approx(0.5)

    def test_reset_clears_everything(self):
        bank = RateEstimatorBank(SHAPE)
        for _ in range(5):
            bank.observe(np.full(SHAPE, 10.0))
        bank.reset()
        assert not bank.initialized
        assert bank.ticks == 0
        assert bank.drift_events == 0
        np.testing.assert_allclose(bank.rate, np.zeros(SHAPE))
