"""Tests for the streaming control plane (repro.stream)."""

import numpy as np
import pytest

from repro.core.controller import SlottedController
from repro.experiments.section6 import section6_experiment
from repro.obs import InMemoryCollector
from repro.stream import (
    ControlAction,
    ControlContext,
    ControlPolicy,
    DriftTriggered,
    MarginTriggered,
    PeriodicResolve,
    StreamingController,
    deadline_safe_capacity,
    make_policy,
    repair_plan,
    shed_to_capacity,
)
from repro.workload.traces import WorkloadTrace

REL_TOL = 1e-6


@pytest.fixture(scope="module")
def section6():
    return section6_experiment()


def blockify(trace, block):
    """Piecewise-constant ("bursty") variant of a trace: each run of
    `block` slots repeats the first slot of the run."""
    idx = (np.arange(trace.num_slots) // block) * block
    return WorkloadTrace(trace.rates[:, :, idx], trace.slot_duration)


class TestSlottedEquivalence:
    """The ISSUE acceptance pin: PeriodicResolve streaming over the §VI
    day matches SlottedController slot for slot within 1e-6."""

    def test_periodic_streaming_matches_slotted(self, section6):
        exp = section6
        slotted = SlottedController(
            exp.optimizer(), exp.trace, exp.market
        ).run()
        streamed = StreamingController(
            exp.optimizer(), exp.trace, exp.market, PeriodicResolve(),
            ticks_per_slot=12,
        ).run()
        assert streamed.num_slots == len(slotted) == exp.trace.num_slots
        assert streamed.full_solves == exp.trace.num_slots
        assert streamed.repairs == 0
        for ref, got in zip(slotted, streamed.records):
            np.testing.assert_allclose(
                got.plan.rates, ref.plan.rates, rtol=REL_TOL, atol=1e-9
            )
            np.testing.assert_allclose(
                got.plan.shares, ref.plan.shares, rtol=REL_TOL, atol=1e-9
            )
            assert got.outcome.net_profit == pytest.approx(
                ref.outcome.net_profit, rel=REL_TOL
            )
            assert got.outcome.revenue == pytest.approx(
                ref.outcome.revenue, rel=REL_TOL
            )
            assert got.outcome.total_cost == pytest.approx(
                ref.outcome.total_cost, rel=REL_TOL, abs=1e-9
            )

    def test_tick_count_independence(self, section6):
        """Per-slot outcomes do not depend on the tick granularity
        (evaluate_plan is linear in duration)."""
        exp = section6
        coarse = StreamingController(
            exp.optimizer(), exp.trace, exp.market, PeriodicResolve(),
            ticks_per_slot=2,
        ).run(num_slots=6)
        fine = StreamingController(
            exp.optimizer(), exp.trace, exp.market, PeriodicResolve(),
            ticks_per_slot=24,
        ).run(num_slots=6)
        np.testing.assert_allclose(
            coarse.net_profit_series, fine.net_profit_series, rtol=REL_TOL
        )


class TestDriftTriggered:
    """Second half of the acceptance pin: on a bursty trace the drift
    policy performs strictly fewer full solves than periodic at equal
    or better realized profit."""

    def test_fewer_solves_equal_profit_on_bursty_trace(self, section6):
        exp = section6
        bursty = blockify(exp.trace, block=4)
        periodic = StreamingController(
            exp.optimizer(), bursty, exp.market, PeriodicResolve(),
            ticks_per_slot=12,
        ).run()
        drift = StreamingController(
            exp.optimizer(), bursty, exp.market, DriftTriggered(),
            ticks_per_slot=12,
        ).run()
        assert drift.full_solves < periodic.full_solves
        assert drift.total_net_profit >= periodic.total_net_profit \
            * (1.0 - REL_TOL)

    def test_holds_within_blocks(self, section6):
        exp = section6
        bursty = blockify(exp.trace, block=4)
        result = StreamingController(
            exp.optimizer(), bursty, exp.market, DriftTriggered(),
            ticks_per_slot=6,
        ).run(num_slots=8)
        # Deterministic under fluid synthesis: bootstrap, the block edge
        # at slot 4, and one drift-triggered re-solve inside the ramping
        # second block — far fewer than one solve per slot.
        assert result.full_solves == 3
        assert result.repairs == 0


class TestMarginTriggered:
    def test_runs_and_resolves_at_least_once(self, section6):
        exp = section6
        result = StreamingController(
            exp.optimizer(), exp.trace, exp.market, MarginTriggered(),
            ticks_per_slot=4,
        ).run(num_slots=6)
        assert result.full_solves >= 1
        assert result.num_slots == 6
        assert np.all(np.isfinite(result.net_profit_series))


class TestAdmissionControl:
    def test_safe_capacity_matches_md043_formula(self, section6):
        topo = section6.topology
        cap = deadline_safe_capacity(topo)
        mu = topo.service_rates
        expected = np.zeros(topo.num_classes)
        for k, rc in enumerate(topo.request_classes):
            deadline = rc.deadline * (1.0 - 1e-6)
            for l in range(topo.num_datacenters):
                per = topo.server_capacities[l] * mu[k, l] - 1.0 / deadline
                expected[k] += topo.servers_per_datacenter[l] * max(0.0, per)
        np.testing.assert_allclose(cap, expected)

    def test_shed_proportional_across_frontends(self):
        arrivals = np.array([[60.0, 40.0], [10.0, 10.0]])
        capacity = np.array([50.0, 100.0])
        admitted, shed = shed_to_capacity(arrivals, capacity)
        np.testing.assert_allclose(admitted[0], [30.0, 20.0])
        np.testing.assert_allclose(admitted[1], [10.0, 10.0])
        np.testing.assert_allclose(shed, [50.0, 0.0])

    def test_no_shed_under_capacity_is_identity(self):
        arrivals = np.array([[6.0, 4.0]])
        admitted, shed = shed_to_capacity(arrivals, np.array([100.0]))
        np.testing.assert_array_equal(admitted, arrivals)
        assert shed[0] == 0.0

    def test_overload_is_shed_before_planning(self, section6):
        """An impossible offered load still produces a feasible run,
        with the excess counted as shed requests."""
        exp = section6
        overload = exp.trace.scaled(50.0)
        result = StreamingController(
            exp.optimizer(), overload, exp.market, PeriodicResolve(),
            ticks_per_slot=2,
        ).run(num_slots=2)
        assert result.shed_requests > 0.0
        assert np.all(np.isfinite(result.net_profit_series))


class TestRepairPath:
    def test_repair_scales_along_existing_routes(self, section6):
        exp = section6
        arrivals = exp.trace.arrivals_at(3)
        prices = exp.market.prices_at(3)
        plan = exp.optimizer().plan_slot(arrivals, prices,
                                         slot_duration=1.0)
        outcome = repair_plan(plan, arrivals * 0.9)
        assert outcome.coverage == pytest.approx(1.0, rel=1e-9)
        np.testing.assert_allclose(
            outcome.plan.rates, plan.rates * 0.9, rtol=1e-9
        )

    def test_repair_caps_at_deadline_safe_rates(self, section6):
        exp = section6
        arrivals = exp.trace.arrivals_at(3)
        prices = exp.market.prices_at(3)
        plan = exp.optimizer().plan_slot(arrivals, prices,
                                         slot_duration=1.0)
        outcome = repair_plan(plan, arrivals * 50.0)
        assert outcome.coverage < 1.0
        repaired = outcome.plan
        effective = repaired.shares * repaired.server_service_rates()
        loads = repaired.server_loads()
        # Every loaded server still meets its deadline-safe rate.
        for k, rc in enumerate(plan.topology.request_classes):
            safe = effective[k] - 1.0 / (rc.deadline * (1.0 - 1e-6))
            ok = loads[k] <= np.maximum(safe, 0.0) + 1e-9
            assert bool(ok.all())

    def test_failed_repair_escalates_to_full_solve(self, section6):
        """A policy that always says repair still yields full coverage
        because the controller escalates when coverage drops."""

        class AlwaysRepair:
            name = "always-repair"

            def reset(self):
                return None

            def decide(self, ctx):
                if not ctx.has_plan:
                    return ControlAction.resolve("bootstrap")
                return ControlAction.repair("forced")

        exp = section6
        result = StreamingController(
            exp.optimizer(), exp.trace, exp.market, AlwaysRepair(),
            ticks_per_slot=4, repair_margin=0.999,
        ).run()
        # The §VI day ramps hard; pure repair cannot cover the peaks.
        assert result.repair_escalations >= 1
        assert result.full_solves >= 2
        assert result.repairs >= 1


class TestPoliciesAndPlumbing:
    def test_policy_protocol_conformance(self):
        for name in ("periodic", "drift", "margin"):
            policy = make_policy(name)
            assert isinstance(policy, ControlPolicy)
        with pytest.raises(ValueError):
            make_policy("nope")

    def test_control_action_validation(self):
        with pytest.raises(ValueError):
            ControlAction("panic")
        assert ControlAction.hold().kind == "hold"
        assert ControlAction.repair("x").reason == "x"

    def test_policy_thresholds_validated(self):
        with pytest.raises(ValueError):
            PeriodicResolve(period=0)
        with pytest.raises(ValueError):
            DriftTriggered(resolve_deviation=0.01, repair_deviation=0.5)
        with pytest.raises(ValueError):
            MarginTriggered(margin_floor=1.5)

    def test_drift_policy_decides_from_context(self):
        policy = DriftTriggered(resolve_deviation=0.2,
                                repair_deviation=0.05)
        base = dict(tick=5, slot=0, tick_in_slot=5, slot_start=False,
                    estimate=np.ones((1, 1)), planned=np.ones((1, 1)),
                    has_plan=True, drift=False)
        assert policy.decide(
            ControlContext(**base, deviation=0.01)).kind == "hold"
        assert policy.decide(
            ControlContext(**base, deviation=0.1)).kind == "repair"
        assert policy.decide(
            ControlContext(**base, deviation=0.5)).kind == "resolve"
        assert policy.decide(ControlContext(
            **{**base, "drift": True}, deviation=0.0)).kind == "resolve"

    def test_counters_reach_collector(self, section6):
        exp = section6
        collector = InMemoryCollector()
        result = StreamingController(
            exp.optimizer(), exp.trace, exp.market, PeriodicResolve(),
            ticks_per_slot=3, collector=collector,
        ).run(num_slots=4)
        assert collector.counters["stream.ticks"] == 12
        assert collector.counters["stream.resolves"] == result.full_solves
        assert "stream.estimator_rel_error" in collector.histograms

    def test_online_estimation_runs(self, section6):
        exp = section6
        result = StreamingController(
            exp.optimizer(), exp.trace, exp.market, DriftTriggered(),
            ticks_per_slot=6, synthesis="poisson", estimation="online",
            seed=42,
        ).run(num_slots=6)
        assert result.num_slots == 6
        assert result.estimator_rel_error > 0.0
        assert np.all(np.isfinite(result.net_profit_series))

    def test_streaming_is_deterministic_given_seed(self, section6):
        exp = section6
        runs = [
            StreamingController(
                exp.optimizer(), exp.trace, exp.market, DriftTriggered(),
                ticks_per_slot=4, synthesis="poisson",
                estimation="online", seed=9,
            ).run(num_slots=4)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            runs[0].net_profit_series, runs[1].net_profit_series
        )
        assert runs[0].full_solves == runs[1].full_solves
        assert runs[0].repairs == runs[1].repairs
