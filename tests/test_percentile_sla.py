"""Tests for percentile (tail) SLAs on the slot problem."""

import numpy as np
import pytest

from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.queueing.mm1 import MM1Queue


@pytest.fixture
def inputs(small_topology):
    return small_topology, np.full((2, 2), 60.0), np.array([0.05, 0.12])


class TestPercentileSLA:
    def test_validation(self, small_topology):
        with pytest.raises(ValueError):
            ProfitAwareOptimizer(small_topology, config=OptimizerConfig(percentile_sla=0.0))
        with pytest.raises(ValueError):
            ProfitAwareOptimizer(small_topology, config=OptimizerConfig(percentile_sla=1.0))

    def test_none_reproduces_paper(self, inputs):
        topo, arrivals, prices = inputs
        base = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
        explicit = ProfitAwareOptimizer(topo, config=OptimizerConfig(percentile_sla=None)).plan_slot(arrivals, prices)
        assert np.allclose(base.rates, explicit.rates)

    def test_weak_eps_floors_at_mean_constraint(self, inputs):
        # eps > 1/e would relax below the mean-delay SLA; it must floor.
        topo, arrivals, prices = inputs
        opt = ProfitAwareOptimizer(topo, config=OptimizerConfig(percentile_sla=0.9))
        assert opt._delay_factor == 1.0

    def test_analytic_violation_probability_met(self, inputs):
        topo, arrivals, prices = inputs
        eps = 0.05
        plan = ProfitAwareOptimizer(topo, config=OptimizerConfig(percentile_sla=eps, use_spare_capacity=False)).plan_slot(arrivals, prices)
        loads = plan.server_loads()
        effective = plan.shares * plan.server_service_rates()
        for k, rc in enumerate(topo.request_classes):
            for n in range(topo.num_servers):
                if loads[k, n] <= 1e-9:
                    continue
                queue = MM1Queue(service_rate=float(effective[k, n]),
                                 arrival_rate=float(loads[k, n]))
                assert queue.delay_violation_probability(rc.deadline) \
                    <= eps * 1.01

    def test_tail_sla_costs_capacity_under_saturation(self, small_topology):
        arrivals = np.full((2, 2), 400.0)  # saturating
        prices = np.array([0.05, 0.12])
        mean_plan = ProfitAwareOptimizer(small_topology).plan_slot(
            arrivals, prices)
        tail_plan = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(percentile_sla=0.05)).plan_slot(arrivals, prices)
        assert (tail_plan.served_rates().sum()
                < mean_plan.served_rates().sum())

    def test_des_confirms_tail_guarantee(self, inputs):
        # Simulate the most-loaded planned VM and count sojourns past
        # the deadline: the empirical violation rate must respect eps.
        from repro.des.engine import Engine
        from repro.des.measurements import SojournStats
        from repro.des.processes import PoissonArrivals
        from repro.des.server import VirtualMachine

        topo, arrivals, prices = inputs
        eps = 0.1
        plan = ProfitAwareOptimizer(topo, config=OptimizerConfig(percentile_sla=eps, use_spare_capacity=False)).plan_slot(arrivals, prices)
        loads = plan.server_loads()
        effective = plan.shares * plan.server_service_rates()
        k, n = np.unravel_index(np.argmax(loads), loads.shape)
        deadline = topo.request_classes[k].deadline

        engine = Engine()
        stats = SojournStats(warmup_time=20.0, keep_raw=True)
        vm = VirtualMachine(engine, rate=float(effective[k, n]), stats=stats)
        horizon = 6000.0 / float(loads[k, n])
        PoissonArrivals(engine, rate=float(loads[k, n]), sink=vm.arrive,
                        seed=3, stop_time=horizon)
        engine.run()
        raw = np.asarray(stats.raw)
        assert raw.size > 3000
        violation_rate = float((raw > deadline).mean())
        # PS sojourn tails are somewhat heavier than FCFS's exponential,
        # so allow slack above the FCFS-exact eps; the rate must still be
        # far below the mean-SLA's ~1/e.
        assert violation_rate < 2.5 * eps

    def test_mean_sla_violates_tail_that_percentile_fixes(self, inputs):
        # Contrast: the paper's mean-delay plan leaves a heavy tail.
        topo, arrivals, prices = inputs
        mean_plan = ProfitAwareOptimizer(topo, config=OptimizerConfig(use_spare_capacity=False)).plan_slot(arrivals, prices)
        loads = mean_plan.server_loads()
        effective = mean_plan.shares * mean_plan.server_service_rates()
        worst = 0.0
        for k, rc in enumerate(topo.request_classes):
            for n in range(topo.num_servers):
                if loads[k, n] <= 1e-9:
                    continue
                queue = MM1Queue(float(effective[k, n]), float(loads[k, n]))
                worst = max(worst,
                            queue.delay_violation_probability(rc.deadline))
        # Mean-delay SLA tolerates ~1/e of requests past the deadline.
        assert worst > 0.3
