"""Property-based tests for TUFs and the big-M transformation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bigm import check_series_selects_level, lagrange_utility
from repro.core.tuf import MonotonicTUF, StepDownwardTUF


@st.composite
def step_tufs(draw, max_levels=6):
    """Random valid step-downward TUFs with well-separated levels."""
    n = draw(st.integers(min_value=1, max_value=max_levels))
    # Strictly decreasing values with gaps >= 0.5.
    gaps = draw(st.lists(
        st.floats(0.5, 5.0, allow_nan=False), min_size=n, max_size=n
    ))
    values = np.cumsum(gaps[::-1])[::-1].copy()
    # Strictly increasing deadlines with gaps >= 0.05.
    dgaps = draw(st.lists(
        st.floats(0.05, 2.0, allow_nan=False), min_size=n, max_size=n
    ))
    deadlines = np.cumsum(dgaps)
    return StepDownwardTUF(values=values, deadlines=deadlines)


class TestTUFProperties:
    @given(tuf=step_tufs(), delay=st.floats(-1.0, 20.0, allow_nan=False))
    def test_utility_bounded(self, tuf, delay):
        value = tuf.utility(delay)
        assert 0.0 <= value <= tuf.max_value

    @given(tuf=step_tufs(),
           d1=st.floats(0.0, 20.0, allow_nan=False),
           d2=st.floats(0.0, 20.0, allow_nan=False))
    def test_monotone_non_increasing(self, tuf, d1, d2):
        lo, hi = min(d1, d2), max(d1, d2)
        assert tuf.utility(lo) >= tuf.utility(hi)

    @given(tuf=step_tufs())
    def test_zero_past_final_deadline(self, tuf):
        assert tuf.utility(tuf.deadline * 1.0001 + 1e-9) == 0.0

    @given(tuf=step_tufs())
    def test_top_value_at_zero(self, tuf):
        assert tuf.utility(0.0) == tuf.max_value

    @given(tuf=step_tufs(), delay=st.floats(1e-6, 20.0, allow_nan=False))
    def test_level_for_delay_consistent_with_utility(self, tuf, delay):
        level = tuf.level_for_delay(delay)
        if level < 0:
            assert tuf.utility(delay) == 0.0
        else:
            assert tuf.utility(delay) == tuf.values[level]

    @given(tuf=step_tufs(), frac=st.floats(0.01, 0.99))
    @settings(max_examples=60)
    def test_bigm_series_matches_tuf_everywhere(self, tuf, frac):
        # Probe a point strictly inside the TUF's support, away from the
        # exact boundaries (the series uses an infinitesimal delta there).
        delay = frac * tuf.deadline
        boundaries = tuf.deadlines
        if np.any(np.abs(boundaries - delay) < 1e-6 * tuf.deadline):
            return
        expected, feasible = check_series_selects_level(tuf, delay)
        assert feasible == [expected]

    @given(tuf=step_tufs(max_levels=5))
    def test_lagrange_exact_at_all_levels(self, tuf):
        for q in range(tuf.num_levels):
            got = lagrange_utility(float(q + 1), tuf.values)
            assert abs(got - tuf.values[q]) < 1e-6 * max(1.0, tuf.max_value)


class TestMonotonicDiscretization:
    @given(
        scale=st.floats(1.0, 50.0),
        rate=st.floats(0.1, 3.0),
        levels=st.integers(4, 64),
    )
    @settings(max_examples=40)
    def test_discretized_upper_bounds_original(self, scale, rate, levels):
        tuf = MonotonicTUF(lambda t: scale * np.exp(-rate * t), deadline=3.0)
        step = tuf.discretize(levels)
        for d in np.linspace(0.01, 2.99, 23):
            assert float(step.utility(d)) >= float(tuf.utility(d)) - 1e-9

    @given(levels=st.integers(2, 128))
    @settings(max_examples=30)
    def test_discretization_error_shrinks(self, levels):
        tuf = MonotonicTUF(lambda t: 10.0 - 3.0 * t, deadline=3.0)
        step = tuf.discretize(levels)
        max_err = max(
            abs(float(step.utility(d)) - float(tuf.utility(d)))
            for d in np.linspace(0.01, 2.99, 50)
        )
        # One step's drop is 9/levels; allow slack for edge handling.
        assert max_err <= 9.0 / levels + 1e-6
