"""Tests for the parallel slot-solving runner."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.baselines import BalancedDispatcher
from repro.core.optimizer import ProfitAwareOptimizer
from repro.obs import InMemoryCollector
from repro.sim.parallel import DispatcherSpec, parallel_run_simulation
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.sim.slotted import run_simulation
from repro.workload.traces import WorkloadTrace


class _WorkerBomb(BalancedDispatcher):
    """Plans normally in-process, raises inside pool workers.

    Lets the parent re-solve the poisoned chunks serially and compare
    against an unpoisoned reference run.  Module-level so it pickles;
    the fork start method (the Linux default) carries the monkeypatched
    ``_KINDS`` registry into the children.
    """

    name = "worker_bomb"

    def plan_slot(self, arrivals, prices, slot_duration=1.0):
        if multiprocessing.parent_process() is not None:
            raise RuntimeError("injected worker failure")
        return super().plan_slot(arrivals, prices,
                                 slot_duration=slot_duration)


class _WorkerKiller(BalancedDispatcher):
    """Kills the worker process outright (-> ``BrokenProcessPool``)."""

    name = "worker_killer"

    def plan_slot(self, arrivals, prices, slot_duration=1.0):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        return super().plan_slot(arrivals, prices,
                                 slot_duration=slot_duration)


@pytest.fixture
def setup(small_topology):
    rng = np.random.default_rng(3)
    trace = WorkloadTrace(rng.uniform(10.0, 60.0, size=(2, 2, 6)))
    market = MultiElectricityMarket([
        PriceTrace("a", rng.uniform(0.04, 0.12, size=6)),
        PriceTrace("b", rng.uniform(0.04, 0.12, size=6)),
    ])
    return small_topology, trace, market


class TestDispatcherSpec:
    def test_builds_known_kinds(self, small_topology):
        for kind in ("optimized", "balanced", "even_split"):
            dispatcher = DispatcherSpec(kind).build(small_topology)
            assert hasattr(dispatcher, "plan_slot")

    def test_kwargs_forwarded(self, small_topology):
        spec = DispatcherSpec("optimized", {"deadline_margin": 0.9})
        assert spec.build(small_topology).deadline_margin == 0.9

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            DispatcherSpec("magic")

    def test_collector_on_baseline_kind_warns(self, small_topology):
        # Baselines have no telemetry hooks: the run works, but the
        # caller should learn their traces will stay empty.
        with pytest.warns(RuntimeWarning, match="no telemetry hooks"):
            DispatcherSpec("balanced").build(
                small_topology, collector=InMemoryCollector()
            )

    def test_collector_on_optimizer_kind_does_not_warn(self, small_topology):
        import warnings as warnings_mod
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            dispatcher = DispatcherSpec("optimized").build(
                small_topology, collector=InMemoryCollector()
            )
        assert isinstance(dispatcher.collector, InMemoryCollector)


class TestParallelRun:
    def test_serial_path_matches_reference(self, setup):
        topo, trace, market = setup
        reference = run_simulation(ProfitAwareOptimizer(topo), trace, market)
        parallel = parallel_run_simulation(
            topo, DispatcherSpec("optimized"), trace, market, workers=1
        )
        assert parallel.num_slots == reference.num_slots
        assert np.allclose(parallel.net_profit_series,
                           reference.net_profit_series)

    def test_pool_matches_serial(self, setup):
        topo, trace, market = setup
        serial = parallel_run_simulation(
            topo, DispatcherSpec("optimized"), trace, market, workers=1
        )
        pooled = parallel_run_simulation(
            topo, DispatcherSpec("optimized"), trace, market, workers=2
        )
        assert np.allclose(pooled.net_profit_series,
                           serial.net_profit_series)
        # Records come back in slot order regardless of completion order.
        assert [r.slot for r in pooled.records] == list(range(6))

    def test_balanced_spec(self, setup):
        topo, trace, market = setup
        from repro.core.baselines import BalancedDispatcher
        reference = run_simulation(BalancedDispatcher(topo), trace, market)
        pooled = parallel_run_simulation(
            topo, DispatcherSpec("balanced"), trace, market, workers=2
        )
        assert np.allclose(pooled.net_profit_series,
                           reference.net_profit_series)

    def test_num_slots_limit(self, setup):
        topo, trace, market = setup
        result = parallel_run_simulation(
            topo, DispatcherSpec("balanced"), trace, market,
            num_slots=3, workers=1,
        )
        assert result.num_slots == 3

    def test_workers_validated(self, setup):
        topo, trace, market = setup
        with pytest.raises(ValueError):
            parallel_run_simulation(
                topo, DispatcherSpec("balanced"), trace, market, workers=0
            )

    def test_workers_clamped_to_slot_count(self, setup):
        # More workers than slots must not spawn idle processes (or
        # crash on empty chunks) — the pool is clamped to the slot count.
        topo, trace, market = setup
        result = parallel_run_simulation(
            topo, DispatcherSpec("balanced"), trace, market,
            num_slots=2, workers=64,
        )
        assert result.num_slots == 2
        assert [r.slot for r in result.records] == [0, 1]

    def test_cpu_count_none_falls_back_to_serial(self, setup, monkeypatch):
        # os.cpu_count() may return None (e.g. restricted containers);
        # the default must degrade to a serial run, not crash.
        import repro.sim.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: None)
        topo, trace, market = setup
        reference = run_simulation(ProfitAwareOptimizer(topo), trace, market)
        result = parallel_run_simulation(
            topo, DispatcherSpec("optimized"), trace, market, workers=None
        )
        assert np.allclose(result.net_profit_series,
                           reference.net_profit_series)

    def test_zero_slots(self, setup):
        topo, trace, market = setup
        result = parallel_run_simulation(
            topo, DispatcherSpec("balanced"), trace, market,
            num_slots=0, workers=4,
        )
        assert result.num_slots == 0
        # Degenerate run: an empty (0,) completion vector, not a scalar.
        assert result.completion_fractions.shape == (0,)

    def test_chunked_pool_matches_serial_with_warm_start(self, setup):
        # Chunked scheduling keeps warm state inside each worker's chunk;
        # with the exact backends that must not change any result.
        topo, trace, market = setup
        spec = DispatcherSpec("optimized", {"warm_start": True})
        serial = parallel_run_simulation(topo, spec, trace, market, workers=1)
        pooled = parallel_run_simulation(topo, spec, trace, market, workers=3)
        assert np.allclose(pooled.net_profit_series,
                           serial.net_profit_series)


class TestWorkerRecovery:
    @pytest.fixture(autouse=True)
    def _register_bombs(self, monkeypatch):
        import repro.sim.parallel as parallel_mod
        monkeypatch.setitem(parallel_mod._KINDS, "worker_bomb", _WorkerBomb)
        monkeypatch.setitem(parallel_mod._KINDS, "worker_killer",
                            _WorkerKiller)

    def test_worker_exception_recovered_serially(self, setup):
        topo, trace, market = setup
        reference = run_simulation(BalancedDispatcher(topo), trace, market)
        with pytest.warns(RuntimeWarning, match="re-solving its slots"):
            result = parallel_run_simulation(
                topo, DispatcherSpec("worker_bomb"), trace, market,
                workers=2,
            )
        # Every slot recovered, in order, with identical objectives.
        assert [r.slot for r in result.records] == list(range(6))
        assert np.allclose(result.net_profit_series,
                           reference.net_profit_series)
        # And the causes are on record, per slot.
        assert set(result.failures) == set(range(6))
        assert all("injected worker failure" in cause
                   for cause in result.failures.values())

    def test_dead_worker_recovered_serially(self, setup):
        # A worker dying outright surfaces as BrokenProcessPool, which
        # poisons every outstanding future — all chunks must recover.
        topo, trace, market = setup
        reference = run_simulation(BalancedDispatcher(topo), trace, market)
        with pytest.warns(RuntimeWarning, match="re-solving its slots"):
            result = parallel_run_simulation(
                topo, DispatcherSpec("worker_killer"), trace, market,
                workers=2,
            )
        assert np.allclose(result.net_profit_series,
                           reference.net_profit_series)
        assert set(result.failures) == set(range(6))
        assert any("BrokenProcessPool" in cause
                   for cause in result.failures.values())

    def test_clean_run_reports_no_failures(self, setup):
        topo, trace, market = setup
        result = parallel_run_simulation(
            topo, DispatcherSpec("balanced"), trace, market, workers=2,
        )
        assert result.failures == {}


def test_serial_zero_slot_run_has_empty_completion_vector(small_topology):
    rng = np.random.default_rng(0)
    trace = WorkloadTrace(rng.uniform(10.0, 60.0, size=(2, 2, 3)))
    market = MultiElectricityMarket([
        PriceTrace("a", rng.uniform(0.04, 0.12, size=3)),
        PriceTrace("b", rng.uniform(0.04, 0.12, size=3)),
    ])
    result = run_simulation(
        BalancedDispatcher(small_topology), trace, market, num_slots=0
    )
    assert result.num_slots == 0
    assert result.completion_fractions.shape == (0,)
    assert result.completion_fractions.ndim == 1


def test_compute_completion_fractions_empty_records():
    from repro.sim.slotted import SimulationResult
    frac = SimulationResult.compute_completion_fractions([])
    assert isinstance(frac, np.ndarray)
    assert frac.shape == (0,)


def test_chunked_splits_are_contiguous_and_complete():
    from repro.sim.parallel import _chunked
    tasks = list(range(10))
    for k in (1, 2, 3, 7, 10, 25):
        chunks = _chunked(tasks, k)
        assert [x for c in chunks for x in c] == tasks
        assert all(c for c in chunks)
        assert len(chunks) == min(k, len(tasks))
