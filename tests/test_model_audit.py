"""Formulation auditor: pass families, report API, and the
audit-vs-solver agreement contract (a statically infeasible slot must
also fail in ``plan_slot``; clean slots must solve)."""

import json

import numpy as np
import pytest

from repro.analysis.model import (
    ModelFinding,
    all_audit_rules,
    audit_slot,
    get_audit_rule,
    minimal_big_for_series,
    recommended_big,
)
from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.bigm import DEFAULT_BIG
from repro.core.config import OptimizerConfig
from repro.core.formulation import SlotInputs
from repro.core.optimizer import ProfitAwareOptimizer
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.obs import InMemoryCollector
from repro.solvers.base import SolverError

#: Data-driven minimal BIG of the conftest multilevel fixture's r1 TUF
#: ([10, 4] / [0.002, 0.006]): max((D2-D1)/(U1-U2), (D1+delta)/(U1-U2)).
R1_MINIMAL = (0.006 - 0.002) / (10.0 - 4.0)


def codes(report):
    return [f.code for f in report.findings]


@pytest.fixture
def onelevel_inputs(small_topology):
    return SlotInputs(
        topology=small_topology,
        arrivals=np.full((2, 2), 40.0),
        prices=np.array([0.05, 0.12]),
    )


@pytest.fixture
def multilevel_inputs(multilevel_topology):
    return SlotInputs(
        topology=multilevel_topology,
        arrivals=np.array([[100.0], [100.0]]),
        prices=np.array([0.1, 0.1]),
    )


@pytest.fixture
def infeasible_topology():
    """A deadline below any achievable delay: 1/(D*C*mu) >> 1."""
    rc = RequestClass(
        "r1", ConstantTUF(10.0, 1e-9), transfer_unit_cost=0.001
    )
    dc = DataCenter(
        "dc1", num_servers=2,
        service_rates=np.array([100.0]),
        energy_per_request=np.array([2e-4]),
    )
    return CloudTopology(
        (rc,), (FrontEnd("fe1"),), (dc,), distances=np.array([[100.0]])
    )


class TestRegistry:
    def test_all_pass_families_registered(self):
        leads = {rule.code for rule in all_audit_rules()}
        assert {"MD010", "MD012", "MD020", "MD030", "MD040"} <= leads

    def test_families_carry_metadata(self):
        for rule in all_audit_rules():
            assert rule.name, rule.code
            assert rule.rationale, rule.code
            assert rule.code in rule.codes

    def test_lookup_by_member_code(self):
        assert get_audit_rule("MD011").code == "MD010"
        assert get_audit_rule("MD043").code == "MD040"
        with pytest.raises(KeyError, match="MD999"):
            get_audit_rule("MD999")

    def test_finding_validation(self):
        with pytest.raises(ValueError, match="MDxxx"):
            ModelFinding(code="RP001", severity="error",
                         component="x", message="m")
        with pytest.raises(ValueError, match="severity"):
            ModelFinding(code="MD010", severity="fatal",
                         component="x", message="m")


class TestMinimalBig:
    def test_two_level_minimum(self):
        minima = minimal_big_for_series(
            np.array([10.0, 4.0]), np.array([0.002, 0.006])
        )
        assert minima == pytest.approx([R1_MINIMAL, 0.002 / 6.0], rel=1e-6)

    def test_recommended_applies_safety_factor(self):
        rec = recommended_big(np.array([10.0, 4.0]), np.array([0.002, 0.006]))
        assert rec == pytest.approx(10.0 * R1_MINIMAL, rel=1e-6)

    def test_one_level_tuf_needs_no_big(self):
        minima = minimal_big_for_series(np.array([10.0]), np.array([0.02]))
        assert minima.size == 0
        assert recommended_big(np.array([10.0]), np.array([0.02])) == 0.0


class TestCleanSlots:
    def test_one_level_slot_is_spotless(self, onelevel_inputs,
                                        formulation_audit):
        report = formulation_audit(onelevel_inputs)
        assert report.clean
        assert report.findings == []
        assert report.render_text() == "formulation audit: clean"

    def test_default_big_flags_looseness_not_errors(self, multilevel_inputs):
        # DEFAULT_BIG is ~1e7x the data-driven minimum for this fixture:
        # numerically risky (warning) but still a valid formulation.
        report = audit_slot(multilevel_inputs)
        assert report.clean
        assert codes(report) == ["MD010", "MD010", "MD045"]
        by_class = {f.component: f for f in report.warnings}
        assert set(by_class) == {"bigm[r1]", "bigm[r2]"}
        assert by_class["bigm[r1]"].data["configured"] == DEFAULT_BIG
        assert by_class["bigm[r1]"].data["recommended"] == pytest.approx(
            10.0 * R1_MINIMAL, rel=1e-6
        )

    def test_tightened_big_is_silent(self, multilevel_inputs):
        report = audit_slot(multilevel_inputs, big=10.0 * R1_MINIMAL)
        assert report.clean
        assert "MD010" not in codes(report)
        assert "MD011" not in codes(report)

    def test_details_expose_tightened_constants(self, multilevel_inputs):
        details = audit_slot(multilevel_inputs).details
        assert details["tightened_big"]["r1"] == pytest.approx(
            10.0 * R1_MINIMAL, rel=1e-6
        )
        assert set(details["matrix"]) == {"lp", "milp"}
        assert all(v > 0 for v in details["feasibility_margin"].values())


class TestMisScaledSlots:
    def test_too_small_big_is_an_error(self, multilevel_inputs):
        report = audit_slot(multilevel_inputs, big=0.5 * R1_MINIMAL)
        assert not report.clean
        assert [f.code for f in report.errors] == ["MD011", "MD011"]
        # Errors sort ahead of the MD045 info in both renderings.
        first_line = report.render_text().splitlines()[0]
        assert "error MD011" in first_line

    def test_unachievable_deadline_produces_feasibility_errors(
        self, infeasible_topology
    ):
        inputs = SlotInputs(
            topology=infeasible_topology,
            arrivals=np.array([[10.0]]),
            prices=np.array([0.1]),
        )
        report = audit_slot(inputs)
        assert not report.clean
        assert codes(report) == ["MD040", "MD042", "MD043", "MD044"]
        assert report.details["feasibility_margin"]["dc1"] < 0
        assert any(
            "infeasible topology" in msg
            for msg in report.details["build_errors"]
        )

    def test_json_report_round_trips(self, multilevel_inputs):
        report = audit_slot(multilevel_inputs, big=0.5 * R1_MINIMAL)
        payload = json.loads(report.render_json())
        assert payload["summary"]["errors"] == 2
        assert payload["summary"]["findings"] == len(report.findings)
        recorded = [f["code"] for f in payload["findings"]]
        assert recorded == codes(report)
        assert payload["details"]["tightened_big"]["r1"] == pytest.approx(
            10.0 * R1_MINIMAL, rel=1e-6
        )


class TestOptimizerAgreement:
    """OptimizerConfig(audit=...) and audit-vs-solver consistency."""

    def test_audit_mode_validated(self):
        with pytest.raises(ValueError, match="audit"):
            OptimizerConfig(audit="loud")

    def test_audit_off_leaves_trace_empty(self, small_topology):
        collector = InMemoryCollector()
        opt = ProfitAwareOptimizer(
            small_topology, config=OptimizerConfig(collector=collector)
        )
        opt.plan_slot(np.full((2, 2), 40.0), np.array([0.05, 0.12]))
        assert collector.slot_traces[0].audit == []
        assert "optimizer.audits" not in collector.counters

    def test_audit_warn_surfaces_findings_in_trace(self, multilevel_topology):
        collector = InMemoryCollector()
        opt = ProfitAwareOptimizer(
            multilevel_topology,
            config=OptimizerConfig(audit="warn", collector=collector),
        )
        opt.plan_slot(np.array([[100.0], [100.0]]), np.array([0.1, 0.1]))
        trace = collector.slot_traces[0]
        assert [f["code"] for f in trace.audit] == ["MD010", "MD010", "MD045"]
        assert trace.audit[0]["severity"] == "warning"
        assert collector.counters["optimizer.audits"] == 1
        assert collector.counters["optimizer.audit_findings"] == 3
        assert "optimizer.audit_errors" not in collector.counters

    def test_audit_error_passes_clean_slots(self, small_topology):
        opt = ProfitAwareOptimizer(
            small_topology, config=OptimizerConfig(audit="error")
        )
        plan = opt.plan_slot(np.full((2, 2), 40.0), np.array([0.05, 0.12]))
        assert plan.meets_deadlines()

    def test_audit_error_refuses_infeasible_slot(self, infeasible_topology):
        collector = InMemoryCollector()
        opt = ProfitAwareOptimizer(
            infeasible_topology,
            config=OptimizerConfig(audit="error", collector=collector),
        )
        with pytest.raises(SolverError, match="MD040"):
            opt.plan_slot(np.array([[10.0]]), np.array([0.1]))
        assert collector.counters["optimizer.audit_errors"] >= 1

    def test_solver_agrees_with_static_verdict(self, infeasible_topology):
        """Agreement: a slot the auditor rejects must also fail the
        solve path (the builders refuse the same reserve condition)."""
        inputs = SlotInputs(
            topology=infeasible_topology,
            arrivals=np.array([[10.0]]),
            prices=np.array([0.1]),
        )
        assert not audit_slot(inputs).clean
        opt = ProfitAwareOptimizer(infeasible_topology)
        with pytest.raises((ValueError, SolverError), match="infeasible"):
            opt.plan_slot(np.array([[10.0]]), np.array([0.1]))

    def test_clean_audit_means_solvable(self, onelevel_inputs, small_topology):
        assert audit_slot(onelevel_inputs).clean
        plan = ProfitAwareOptimizer(small_topology).plan_slot(
            np.full((2, 2), 40.0), np.array([0.05, 0.12])
        )
        assert plan.served_rates().sum() > 0
