"""Tests for whole-cluster DES evaluation of dispatch plans."""

import numpy as np
import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import ProfitAwareOptimizer
from repro.des.cluster import ClusterSimulation, simulate_plan


@pytest.fixture
def planned(small_topology):
    arrivals = np.full((2, 2), 40.0)
    prices = np.array([0.05, 0.12])
    plan = ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices)
    return small_topology, plan, arrivals, prices


class TestClusterSimulation:
    def test_job_counts_match_rates(self, planned):
        _, plan, arrivals, prices = planned
        horizon = 50.0
        outcome = simulate_plan(plan, prices, slot_duration=horizon, seed=3)
        expected = plan.served_rates().sum() * horizon
        assert outcome.generated == pytest.approx(expected, rel=0.1)
        # Nearly all generated jobs complete once the queue drains.
        assert outcome.completed == outcome.generated

    def test_mean_sojourns_match_eq1(self, planned):
        _, plan, arrivals, prices = planned
        outcome = simulate_plan(plan, prices, slot_duration=120.0, seed=5,
                                warmup_fraction=0.1)
        assert outcome.mean_sojourn  # at least one VM measured
        assert outcome.max_delay_model_error < 0.15

    def test_simulated_profit_close_to_analytic(self, planned):
        _, plan, arrivals, prices = planned
        horizon = 120.0
        analytic = evaluate_plan(plan, arrivals, prices,
                                 slot_duration=horizon)
        outcome = simulate_plan(plan, prices, slot_duration=horizon, seed=7)
        assert outcome.net_profit_mean_delay == pytest.approx(
            analytic.net_profit, rel=0.1
        )

    def test_per_job_revenue_at_most_mean_delay_revenue(self, planned):
        # With a concave... actually step-downward TUF and the mean
        # sitting inside the top level, the sojourn tail can only lose
        # revenue relative to the mean-delay accounting.
        _, plan, arrivals, prices = planned
        outcome = simulate_plan(plan, prices, slot_duration=120.0, seed=9)
        assert outcome.revenue_per_job <= outcome.revenue_mean_delay + 1e-9

    def test_costs_scale_with_generated(self, planned):
        _, plan, arrivals, prices = planned
        short = simulate_plan(plan, prices, slot_duration=30.0, seed=1)
        long = simulate_plan(plan, prices, slot_duration=120.0, seed=1)
        assert long.energy_cost > 2 * short.energy_cost
        assert long.transfer_cost > 2 * short.transfer_cost

    def test_deterministic_given_seed(self, planned):
        _, plan, arrivals, prices = planned
        a = simulate_plan(plan, prices, slot_duration=40.0, seed=11)
        b = simulate_plan(plan, prices, slot_duration=40.0, seed=11)
        assert a.generated == b.generated
        assert a.revenue_per_job == pytest.approx(b.revenue_per_job)

    def test_seed_changes_realization(self, planned):
        _, plan, arrivals, prices = planned
        a = simulate_plan(plan, prices, slot_duration=40.0, seed=1)
        b = simulate_plan(plan, prices, slot_duration=40.0, seed=2)
        assert a.generated != b.generated

    def test_validation_errors(self, planned):
        _, plan, arrivals, prices = planned
        with pytest.raises(ValueError):
            ClusterSimulation(plan, slot_duration=0.0)
        with pytest.raises(ValueError):
            ClusterSimulation(plan, slot_duration=1.0, warmup_fraction=1.0)
        with pytest.raises(ValueError, match="prices"):
            simulate_plan(plan, np.array([0.1]), slot_duration=1.0)

    def test_empty_plan(self, small_topology):
        from repro.core.plan import DispatchPlan
        plan = DispatchPlan.empty(small_topology)
        outcome = simulate_plan(plan, np.array([0.1, 0.1]), slot_duration=10.0)
        assert outcome.generated == 0
        assert outcome.net_profit_per_job == 0.0

    def test_multilevel_tail_effect(self, multilevel_topology):
        # Load a VM so the mean delay sits inside level 1 but near its
        # sub-deadline; the per-job accounting must earn strictly less
        # (tail jobs land in level 2 or miss entirely).
        arrivals = np.array([[9000.0], [8000.0]])
        prices = np.array([0.05, 0.09])
        plan = ProfitAwareOptimizer(multilevel_topology).plan_slot(
            arrivals, prices
        )
        outcome = simulate_plan(plan, prices, slot_duration=2.0, seed=4)
        assert outcome.revenue_per_job < outcome.revenue_mean_delay
        # ...but the optimistic accounting error stays bounded.
        assert outcome.revenue_per_job > 0.5 * outcome.revenue_mean_delay
