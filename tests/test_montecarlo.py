"""Tests for Monte-Carlo robustness evaluation."""

import numpy as np
import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.sim.montecarlo import ProfitDistribution, monte_carlo_profit


@pytest.fixture
def planned(small_topology):
    arrivals = np.full((2, 2), 60.0)
    prices = np.array([0.05, 0.12])
    plan = ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices)
    return small_topology, plan, arrivals, prices


class TestMonteCarloProfit:
    def test_zero_noise_equals_deterministic(self, planned):
        _, plan, arrivals, prices = planned
        dist = monte_carlo_profit(plan, arrivals, prices, noise=0.0, draws=5)
        deterministic = evaluate_plan(plan, arrivals, prices).net_profit
        assert np.allclose(dist.samples, deterministic)
        assert dist.std == pytest.approx(0.0, abs=1e-9)

    def test_noise_spreads_distribution(self, planned):
        _, plan, arrivals, prices = planned
        dist = monte_carlo_profit(plan, arrivals, prices, noise=0.2,
                                  draws=100, seed=1)
        assert dist.std > 0
        assert dist.quantile(0.05) < dist.quantile(0.95)
        assert dist.value_at_risk_5 == dist.quantile(0.05)

    def test_mean_below_deterministic(self, planned):
        # Rate shortfalls cut dispatch while overshoots cannot be served
        # beyond the plan: profit is concave in the realization, so the
        # noisy mean sits below the deterministic value.
        _, plan, arrivals, prices = planned
        dist = monte_carlo_profit(plan, arrivals, prices, noise=0.3,
                                  draws=300, seed=2)
        deterministic = evaluate_plan(plan, arrivals, prices).net_profit
        assert dist.mean < deterministic

    def test_deterministic_given_seed(self, planned):
        _, plan, arrivals, prices = planned
        a = monte_carlo_profit(plan, arrivals, prices, draws=20, seed=3)
        b = monte_carlo_profit(plan, arrivals, prices, draws=20, seed=3)
        assert np.array_equal(a.samples, b.samples)

    def test_validation(self, planned):
        _, plan, arrivals, prices = planned
        with pytest.raises(ValueError):
            monte_carlo_profit(plan, arrivals, prices, draws=0)
        with pytest.raises(ValueError):
            monte_carlo_profit(plan, arrivals, prices, noise=-0.1)

    def test_rate_noise_is_insensitive_to_deadline_margin(self, small_topology):
        # In this noise model dispatch is only ever *capped down* (extra
        # arrivals are dropped, planned rates never exceeded), so delays
        # cannot degrade and the deadline margin costs profit without a
        # compensating benefit — margin robustness is a *queueing*-noise
        # story, quantified by the DES (bench_validation_des.py).
        arrivals = np.full((2, 2), 120.0)
        prices = np.array([0.05, 0.12])
        tight_plan = ProfitAwareOptimizer(small_topology).plan_slot(
            arrivals, prices)
        margin_plan = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(deadline_margin=0.8)).plan_slot(arrivals, prices)
        tight = monte_carlo_profit(tight_plan, arrivals, prices,
                                   noise=0.1, draws=200, seed=4)
        margin = monte_carlo_profit(margin_plan, arrivals, prices,
                                    noise=0.1, draws=200, seed=4)
        assert tight.mean >= margin.mean - 1e-9


class TestProfitDistribution:
    def test_single_sample(self):
        dist = ProfitDistribution(np.array([5.0]))
        assert dist.mean == 5.0
        assert dist.std == 0.0
