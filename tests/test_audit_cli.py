"""`repro audit` CLI: exit codes, JSON output, report files, catalog."""

import json

import pytest

from repro.cli import main


class TestExitCodes:
    def test_acceptance_section6_default_is_clean(self, capsys):
        """Acceptance: the section-VI default topology audits clean."""
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "section6 slot 0:" in out
        assert "0 error(s)" in out

    def test_section7_loose_default_big_warns_but_passes(self, capsys):
        # DEFAULT_BIG is far above the section-VII data-driven minima:
        # warnings, not errors, so the gate stays green.
        assert main(["audit", "--scenario", "section7"]) == 0
        out = capsys.readouterr().out
        assert "MD010" in out
        assert "0 error(s)" in out

    def test_too_small_big_fails_gate(self, capsys):
        assert main([
            "audit", "--scenario", "section7", "--big", "1e-9",
        ]) == 1
        assert "MD011" in capsys.readouterr().out

    def test_negative_slot_exits_two(self, capsys):
        assert main(["audit", "--slot", "-1"]) == 2
        assert "--slot" in capsys.readouterr().err

    def test_unwritable_report_exits_two(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "report.json"
        assert main(["audit", "--out", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_report_shape(self, capsys):
        assert main([
            "audit", "--scenario", "section7", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["warnings"] >= 1
        assert {f["code"] for f in payload["findings"]} >= {"MD010"}
        assert "tightened_big" in payload["details"]
        assert "lp" in payload["details"]["matrix"]

    def test_out_writes_json_alongside_text(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(["audit", "--out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["summary"]["errors"] == 0
        # stdout stays in text mode
        assert "section6 slot 0:" in capsys.readouterr().out


class TestThresholds:
    def test_bigm_ratio_limit_silences_looseness(self, capsys):
        assert main([
            "audit", "--scenario", "section7",
            "--bigm-ratio-limit", "1e12",
        ]) == 0
        assert "MD010" not in capsys.readouterr().out

    def test_tight_row_decades_limit_fires(self, capsys):
        # The section-VI LP legitimately spans a few decades; an
        # unreasonable limit must surface MD030 (warning, exit 0).
        assert main(["audit", "--row-decades-limit", "0.5"]) == 0
        assert "MD030" in capsys.readouterr().out


class TestListChecks:
    def test_catalog_lists_all_codes(self, capsys):
        assert main(["audit", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for code in ("MD010", "MD011", "MD012", "MD020", "MD030",
                     "MD036", "MD040", "MD045"):
            assert code in out


@pytest.mark.parametrize("scenario", ["section5", "section6", "section7"])
def test_every_scenario_audits_without_errors(scenario, capsys):
    """No canned experiment ships a formulation the auditor rejects."""
    assert main(["audit", "--scenario", scenario]) == 0
    capsys.readouterr()
