"""Tests for the primal-dual interior-point LP solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.solvers.base import LinearProgram, SolveStatus
from repro.solvers.interior_point import InteriorPointSolver
from repro.solvers.linprog import solve_lp


class TestBasics:
    def test_simple_maximization(self):
        lp = LinearProgram(
            c=[-1.0, -1.0],
            a_ub=[[1.0, 2.0], [3.0, 1.0]],
            b_ub=[4.0, 6.0],
        )
        sol = InteriorPointSolver().solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(-2.8, abs=1e-6)
        assert sol.x == pytest.approx([1.6, 1.2], abs=1e-5)

    def test_equality_constraints(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_eq=[[1.0, 1.0], [1.0, -1.0]],
            b_eq=[2.0, 0.0],
        )
        sol = InteriorPointSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([1.0, 1.0], abs=1e-6)

    def test_bounds_respected(self):
        lp = LinearProgram(c=[-1.0, -2.0], upper=[2.0, 3.0])
        sol = InteriorPointSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([2.0, 3.0], abs=1e-6)

    def test_degenerate_duplicate_rows(self):
        # Standard-form conversion yields dependent rows; the solver must
        # cope (rank reduction path).
        lp = LinearProgram(
            c=[1.0],
            a_eq=[[1.0], [1.0]],
            b_eq=[2.0, 2.0],
            upper=[5.0],
        )
        sol = InteriorPointSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([2.0], abs=1e-6)

    def test_inconsistent_duplicate_rows_infeasible(self):
        lp = LinearProgram(
            c=[1.0],
            a_eq=[[1.0], [1.0]],
            b_eq=[2.0, 3.0],
            upper=[5.0],
        )
        sol = InteriorPointSolver().solve(lp)
        assert sol.status in (SolveStatus.INFEASIBLE,
                              SolveStatus.NUMERICAL_ERROR,
                              SolveStatus.ITERATION_LIMIT)
        assert not sol.ok

    def test_no_constraints(self):
        lp = LinearProgram(c=[1.0], upper=[3.0])
        sol = InteriorPointSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([0.0], abs=1e-6)

    def test_unbounded_free_direction(self):
        lp = LinearProgram(c=[-1.0])
        assert InteriorPointSolver().solve(lp).status in (
            SolveStatus.UNBOUNDED, SolveStatus.INFEASIBLE,
            SolveStatus.ITERATION_LIMIT,
        )


finite = st.floats(-2.0, 2.0, allow_nan=False)


@st.composite
def bounded_lps(draw):
    n = draw(st.integers(2, 6))
    m = draw(st.integers(1, 4))
    c = draw(arrays(float, n, elements=finite))
    a = draw(arrays(float, (m, n), elements=finite))
    b = draw(arrays(float, m, elements=st.floats(0.5, 3.0)))
    return LinearProgram(c=c, a_ub=a, b_ub=b, upper=np.full(n, 3.0))


class TestAgainstHighs:
    @given(lp=bounded_lps())
    @settings(max_examples=40, deadline=None)
    def test_random_bounded_lps_agree(self, lp):
        ipm = InteriorPointSolver().solve(lp)
        ref = solve_lp(lp, "highs")
        assert ref.ok  # zero is feasible, region bounded
        # The IPM may occasionally bail numerically; when it answers, it
        # must answer correctly.
        if ipm.ok:
            assert ipm.objective == pytest.approx(ref.objective, abs=1e-5)
            assert lp.is_feasible(ipm.x, tol=1e-5)

    @given(lp=bounded_lps())
    @settings(max_examples=25, deadline=None)
    def test_convergence_rate_reasonable(self, lp):
        sol = InteriorPointSolver().solve(lp)
        if sol.ok:
            assert sol.iterations <= 60


class TestOnSlotProblem:
    def test_solves_section6_slot(self):
        from repro.core.formulation import SlotInputs, fixed_level_lp
        from repro.experiments.section6 import section6_experiment
        exp = section6_experiment()
        inputs = SlotInputs(
            exp.topology, exp.trace.arrivals_at(14),
            exp.market.prices_at(14), 1.0,
        )
        lp, decoder = fixed_level_lp(inputs)
        ipm = InteriorPointSolver().solve(lp)
        ref = solve_lp(lp, "highs")
        assert ipm.ok
        assert ipm.objective == pytest.approx(
            ref.objective, rel=1e-6, abs=1e-3
        )
        plan = decoder(ipm.x)
        assert plan.meets_deadlines()