"""Warm-start equivalence harness.

The optimizer's warm-start layer (formulation caches + cross-slot
``SolverState`` reuse) is purely an acceleration: for the exact solve
paths, every slot must produce the same plan quality as a cold solve.
These tests pin that contract on deterministic scenarios; the
randomized counterpart lives in ``test_property_warmstart.py``.
"""

import numpy as np
import pytest

from repro.core.formulation import (
    FixedLevelLPCache,
    MultilevelMILPCache,
    SlotInputs,
    fixed_level_lp,
    multilevel_milp,
)
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.sim.slotted import run_simulation
from repro.workload.traces import WorkloadTrace

REL_TOL = 1e-6


def _scenario(topology, num_slots=6, seed=7, low=10.0, high=60.0):
    """A deterministic trace/market pair sized to ``topology``."""
    rng = np.random.default_rng(seed)
    K, S, L = (topology.num_classes, topology.num_frontends,
               topology.num_datacenters)
    trace = WorkloadTrace(rng.uniform(low, high, size=(K, S, num_slots)))
    market = MultiElectricityMarket([
        PriceTrace(f"m{l}", rng.uniform(0.04, 0.12, size=num_slots))
        for l in range(L)
    ])
    return trace, market


def _profits(topology, trace, market, **kwargs):
    dispatcher = ProfitAwareOptimizer(topology, config=OptimizerConfig(**kwargs))
    result = run_simulation(dispatcher, trace, market)
    return result.net_profit_series, dispatcher


def _assert_series_match(warm, cold):
    scale = np.maximum(np.abs(cold), 1.0)
    assert np.all(np.abs(warm - cold) <= REL_TOL * scale), (
        f"warm={warm}, cold={cold}"
    )


class TestLPEquivalence:
    @pytest.mark.parametrize("lp_method", ["highs", "simplex", "ipm"])
    @pytest.mark.parametrize("formulation", ["aggregated", "per_server"])
    def test_warm_matches_cold(self, small_topology, lp_method, formulation):
        trace, market = _scenario(small_topology)
        warm, _ = _profits(small_topology, trace, market,
                           lp_method=lp_method, formulation=formulation,
                           warm_start=True)
        cold, _ = _profits(small_topology, trace, market,
                           lp_method=lp_method, formulation=formulation,
                           warm_start=False)
        _assert_series_match(warm, cold)

    def test_single_class(self, single_class_topology):
        trace, market = _scenario(single_class_topology, low=50.0, high=300.0)
        warm, _ = _profits(single_class_topology, trace, market,
                           lp_method="simplex", warm_start=True)
        cold, _ = _profits(single_class_topology, trace, market,
                           lp_method="simplex", warm_start=False)
        _assert_series_match(warm, cold)


class TestMILPEquivalence:
    @pytest.mark.parametrize("milp_method", ["highs", "bb"])
    def test_warm_matches_cold(self, multilevel_topology, milp_method):
        trace, market = _scenario(multilevel_topology, num_slots=4,
                                  low=500.0, high=4000.0)
        warm, _ = _profits(multilevel_topology, trace, market,
                           milp_method=milp_method, warm_start=True)
        cold, _ = _profits(multilevel_topology, trace, market,
                           milp_method=milp_method, warm_start=False)
        _assert_series_match(warm, cold)

    def test_per_server(self, multilevel_topology):
        trace, market = _scenario(multilevel_topology, num_slots=3,
                                  low=500.0, high=4000.0)
        warm, _ = _profits(multilevel_topology, trace, market,
                           formulation="per_server", warm_start=True)
        cold, _ = _profits(multilevel_topology, trace, market,
                           formulation="per_server", warm_start=False)
        _assert_series_match(warm, cold)


class TestGreedyWarmStart:
    def test_warm_never_worse_than_seed(self, multilevel_topology):
        # Greedy is a local search, so warm and cold trajectories may
        # differ in principle; on these scenarios they agree, and the
        # warm value can never drop below its own seeded start.
        trace, market = _scenario(multilevel_topology, num_slots=4,
                                  low=500.0, high=4000.0)
        warm, _ = _profits(multilevel_topology, trace, market,
                           level_method="greedy", warm_start=True)
        cold, _ = _profits(multilevel_topology, trace, market,
                           level_method="greedy", warm_start=False)
        _assert_series_match(warm, cold)

    def test_warm_uses_fewer_lp_evaluations(self, multilevel_topology):
        trace, market = _scenario(multilevel_topology, num_slots=4,
                                  low=500.0, high=4000.0)
        warm = ProfitAwareOptimizer(multilevel_topology, config=OptimizerConfig(level_method="greedy", warm_start=True))
        cold = ProfitAwareOptimizer(multilevel_topology, config=OptimizerConfig(level_method="greedy", warm_start=False))
        warm_evals = cold_evals = 0
        for t in range(trace.num_slots):
            warm.plan_slot(trace.arrivals_at(t), market.prices_at(t))
            warm_evals += warm.last_stats.lp_evaluations
            cold.plan_slot(trace.arrivals_at(t), market.prices_at(t))
            cold_evals += cold.last_stats.lp_evaluations
        assert warm_evals <= cold_evals


class TestFormulationCache:
    def test_lp_cache_matches_fresh_build(self, small_topology):
        cache = FixedLevelLPCache(small_topology)
        rng = np.random.default_rng(0)
        for _ in range(5):
            inputs = SlotInputs(
                topology=small_topology,
                arrivals=rng.uniform(5.0, 80.0, size=(2, 2)),
                prices=rng.uniform(0.02, 0.15, size=2),
                slot_duration=float(rng.uniform(0.5, 2.0)),
            )
            fresh, _ = fixed_level_lp(inputs)
            cached, _ = cache.build(inputs)
            assert np.array_equal(fresh.c, cached.c)
            assert np.array_equal(fresh.a_ub, cached.a_ub)
            assert np.array_equal(fresh.b_ub, cached.b_ub)
            assert np.array_equal(fresh.lower, cached.lower)
            assert np.array_equal(fresh.upper, cached.upper)

    def test_milp_cache_matches_fresh_build(self, multilevel_topology):
        cache = MultilevelMILPCache(multilevel_topology)
        rng = np.random.default_rng(1)
        for _ in range(5):
            inputs = SlotInputs(
                topology=multilevel_topology,
                arrivals=rng.uniform(100.0, 5000.0, size=(2, 1)),
                prices=rng.uniform(0.02, 0.15, size=2),
            )
            fresh, _ = multilevel_milp(inputs)
            cached, _ = cache.build(inputs)
            assert np.array_equal(fresh.lp.c, cached.lp.c)
            assert np.array_equal(fresh.lp.a_ub, cached.lp.a_ub)
            assert np.array_equal(fresh.lp.b_ub, cached.lp.b_ub)
            assert np.array_equal(fresh.lp.a_eq, cached.lp.a_eq)
            assert np.array_equal(fresh.lp.b_eq, cached.lp.b_eq)
            assert np.array_equal(fresh.lp.upper, cached.lp.upper)
            assert np.array_equal(fresh.integer_mask, cached.integer_mask)

    def test_cached_problems_do_not_alias(self, multilevel_topology):
        cache = MultilevelMILPCache(multilevel_topology)
        rng = np.random.default_rng(2)

        def build(arr_scale):
            return cache.build(SlotInputs(
                topology=multilevel_topology,
                arrivals=np.full((2, 1), arr_scale),
                prices=rng.uniform(0.02, 0.15, size=2),
            ))[0]

        first = build(500.0)
        snapshot = first.lp.a_ub.copy()
        build(4000.0)  # second build patches the cache's internal matrix
        assert np.array_equal(first.lp.a_ub, snapshot)

    def test_cache_rejects_foreign_topology(self, small_topology,
                                            multilevel_topology):
        cache = FixedLevelLPCache(small_topology)
        inputs = SlotInputs(
            topology=multilevel_topology,
            arrivals=np.full((2, 1), 100.0),
            prices=np.full(2, 0.05),
        )
        with pytest.raises(ValueError, match="topology"):
            cache.build(inputs)


class TestWarmStateLifecycle:
    def test_warm_started_flag(self, small_topology):
        trace, market = _scenario(small_topology, num_slots=3)
        dispatcher = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(lp_method="simplex", warm_start=True))
        flags = []
        for t in range(3):
            dispatcher.plan_slot(trace.arrivals_at(t), market.prices_at(t))
            flags.append(dispatcher.last_stats.warm_started)
        assert flags == [False, True, True]

    def test_cold_never_flags(self, small_topology):
        trace, market = _scenario(small_topology, num_slots=2)
        dispatcher = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(lp_method="simplex", warm_start=False))
        for t in range(2):
            dispatcher.plan_slot(trace.arrivals_at(t), market.prices_at(t))
            assert dispatcher.last_stats.warm_started is False

    def test_reset_warm_state_restores_reproducibility(self, small_topology):
        trace, market = _scenario(small_topology)
        dispatcher = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(lp_method="simplex", warm_start=True))
        first = run_simulation(dispatcher, trace, market).net_profit_series
        # run_simulation resets the dispatcher itself; a second run must
        # reproduce the first bit for bit.
        second = run_simulation(dispatcher, trace, market).net_profit_series
        assert np.array_equal(first, second)
        dispatcher.reset_warm_state()
        dispatcher.plan_slot(trace.arrivals_at(0), market.prices_at(0))
        assert dispatcher.last_stats.warm_started is False


class TestRegressionNeverDegrades:
    """Warm-starting must never cost profit on the seed experiments."""

    @pytest.mark.parametrize("topology_fixture,kwargs", [
        ("small_topology", {}),
        ("small_topology", {"lp_method": "simplex"}),
        ("multilevel_topology", {}),
        ("multilevel_topology", {"milp_method": "bb"}),
    ])
    def test_total_profit(self, request, topology_fixture, kwargs):
        topology = request.getfixturevalue(topology_fixture)
        low, high = ((500.0, 4000.0)
                     if topology_fixture == "multilevel_topology"
                     else (10.0, 60.0))
        trace, market = _scenario(topology, num_slots=4, low=low, high=high)
        warm, _ = _profits(topology, trace, market, warm_start=True, **kwargs)
        cold, _ = _profits(topology, trace, market, warm_start=False, **kwargs)
        assert warm.sum() >= cold.sum() - REL_TOL * max(abs(cold.sum()), 1.0)
