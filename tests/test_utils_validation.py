"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
    check_strictly_increasing,
)


class TestCheckFinite:
    def test_accepts_scalars(self):
        assert check_finite(3.0, "x") == 3.0

    def test_accepts_arrays(self):
        out = check_finite([1.0, 2.0], "x")
        assert out.tolist() == [1.0, 2.0]

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite(float("nan"), "x")

    def test_rejects_inf_inside_array(self):
        with pytest.raises(ValueError, match="x"):
            check_finite([1.0, np.inf], "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_nonnegative(-1e-9, "x")

    def test_rejects_negative_in_matrix(self):
        with pytest.raises(ValueError):
            check_nonnegative([[1.0, -2.0]], "x")


class TestCheckPositive:
    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="strictly positive"):
            check_positive(0.0, "x")

    def test_accepts_positive_array(self):
        assert check_positive([1.0, 2.0], "x").shape == (2,)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_probability(1.0001, "p")


class TestCheckShape:
    def test_accepts_matching(self):
        arr = check_shape(np.zeros((2, 3)), (2, 3), "m")
        assert arr.shape == (2, 3)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_shape(np.zeros((2, 3)), (3, 2), "m")


class TestCheckStrictlyIncreasing:
    def test_accepts_increasing(self):
        out = check_strictly_increasing([1.0, 2.0, 5.0], "d")
        assert out.size == 3

    def test_accepts_singleton(self):
        assert check_strictly_increasing([4.0], "d").size == 1

    def test_rejects_equal_neighbours(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            check_strictly_increasing([1.0, 1.0], "d")

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            check_strictly_increasing([2.0, 1.0], "d")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_strictly_increasing(np.zeros((2, 2)), "d")
