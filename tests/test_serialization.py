"""Tests for JSON (de)serialization of system configurations."""

import numpy as np
import pytest

from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace, houston_profile
from repro.utils.serialization import (
    load_json,
    market_from_dict,
    market_to_dict,
    save_json,
    topology_from_dict,
    topology_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.workload.traces import WorkloadTrace
from repro.workload.worldcup import worldcup_like_trace


class TestTopologyRoundTrip:
    def test_round_trip_small(self, small_topology):
        data = topology_to_dict(small_topology)
        rebuilt = topology_from_dict(data)
        assert rebuilt.num_classes == small_topology.num_classes
        assert rebuilt.num_servers == small_topology.num_servers
        assert np.array_equal(rebuilt.distances, small_topology.distances)
        assert np.array_equal(rebuilt.service_rates,
                              small_topology.service_rates)
        for a, b in zip(rebuilt.request_classes,
                        small_topology.request_classes):
            assert a.name == b.name
            assert np.array_equal(a.tuf.values, b.tuf.values)
            assert np.array_equal(a.tuf.deadlines, b.tuf.deadlines)
            assert a.transfer_unit_cost == b.transfer_unit_cost

    def test_round_trip_multilevel(self, multilevel_topology):
        rebuilt = topology_from_dict(topology_to_dict(multilevel_topology))
        assert rebuilt.request_classes[0].num_levels == 2
        # Same slot optimum from the rebuilt topology.
        from repro.core.optimizer import ProfitAwareOptimizer
        from repro.core.objective import evaluate_plan
        arrivals = np.array([[5000.0], [4000.0]])
        prices = np.array([0.05, 0.09])
        a = evaluate_plan(
            ProfitAwareOptimizer(multilevel_topology).plan_slot(
                arrivals, prices),
            arrivals, prices).net_profit
        b = evaluate_plan(
            ProfitAwareOptimizer(rebuilt).plan_slot(arrivals, prices),
            arrivals, prices).net_profit
        assert a == pytest.approx(b, rel=1e-9)

    def test_json_is_plain(self, small_topology):
        import json
        json.dumps(topology_to_dict(small_topology))  # must not raise


class TestMarketAndTraceRoundTrip:
    def test_market(self):
        market = MultiElectricityMarket([
            houston_profile(), PriceTrace("x", np.array([0.1] * 24))
        ])
        rebuilt = market_from_dict(market_to_dict(market))
        assert rebuilt.num_locations == 2
        assert np.array_equal(rebuilt.as_matrix(), market.as_matrix())

    def test_trace(self):
        trace = worldcup_like_trace(seed=3)
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert np.array_equal(rebuilt.rates, trace.rates)
        assert rebuilt.slot_duration == trace.slot_duration


class TestFileIO:
    def test_save_load_topology(self, small_topology, tmp_path):
        path = tmp_path / "topo.json"
        save_json(small_topology, path)
        rebuilt = load_json(path)
        assert np.array_equal(rebuilt.service_rates,
                              small_topology.service_rates)

    def test_save_load_market(self, tmp_path):
        market = MultiElectricityMarket([houston_profile()])
        path = tmp_path / "market.json"
        save_json(market, path)
        assert np.array_equal(load_json(path).as_matrix(), market.as_matrix())

    def test_save_load_trace(self, tmp_path):
        trace = WorkloadTrace(np.ones((1, 1, 3)), slot_duration=2.0)
        path = tmp_path / "trace.json"
        save_json(trace, path)
        assert load_json(path).slot_duration == 2.0

    def test_save_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(object(), tmp_path / "x.json")

    def test_load_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "mystery", "data": {}}')
        with pytest.raises(ValueError, match="kind"):
            load_json(path)

    def test_rebuilt_validation_still_applies(self):
        # Corrupt data must hit the normal constructors' validation.
        with pytest.raises(ValueError):
            trace_from_dict({"rates": [[-1.0]], "slot_duration": 1.0})
