"""Tests for time utility functions and the task model."""

import numpy as np
import pytest

from repro.core.request import RequestClass
from repro.core.tuf import (
    ConstantTUF,
    MonotonicTUF,
    StepDownwardTUF,
    UtilityLevel,
)


class TestUtilityLevel:
    def test_valid(self):
        level = UtilityLevel(value=5.0, deadline=0.1)
        assert level.value == 5.0

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            UtilityLevel(value=-1.0, deadline=0.1)

    def test_rejects_zero_deadline(self):
        with pytest.raises(ValueError):
            UtilityLevel(value=1.0, deadline=0.0)


class TestConstantTUF:
    def test_utility_before_and_after_deadline(self):
        tuf = ConstantTUF(value=10.0, deadline=0.02)
        assert tuf.utility(0.0) == 10.0
        assert tuf.utility(0.02) == 10.0   # inclusive deadline
        assert tuf.utility(0.020001) == 0.0

    def test_is_one_level(self):
        tuf = ConstantTUF(5.0, 1.0)
        assert tuf.num_levels == 1
        assert tuf.max_value == 5.0
        assert tuf.deadline == 1.0


class TestStepDownwardTUF:
    @pytest.fixture
    def tuf(self):
        return StepDownwardTUF(values=[10.0, 6.0, 2.0],
                               deadlines=[0.1, 0.2, 0.4])

    def test_levels_by_delay(self, tuf):
        assert tuf.utility(0.05) == 10.0
        assert tuf.utility(0.1) == 10.0
        assert tuf.utility(0.15) == 6.0
        assert tuf.utility(0.2) == 6.0
        assert tuf.utility(0.3) == 2.0
        assert tuf.utility(0.4) == 2.0
        assert tuf.utility(0.41) == 0.0

    def test_vectorized(self, tuf):
        out = tuf.utility(np.array([0.05, 0.15, 0.3, 1.0]))
        assert out.tolist() == [10.0, 6.0, 2.0, 0.0]

    def test_negative_or_zero_delay_gets_top_level(self, tuf):
        assert tuf.utility(0.0) == 10.0
        assert tuf.utility(-0.1) == 10.0

    def test_level_for_delay(self, tuf):
        assert tuf.level_for_delay(0.05) == 0
        assert tuf.level_for_delay(0.15) == 1
        assert tuf.level_for_delay(0.35) == 2
        assert tuf.level_for_delay(0.5) == -1

    def test_levels_tuple(self, tuf):
        levels = tuf.levels
        assert len(levels) == 3
        assert levels[1] == UtilityLevel(6.0, 0.2)

    def test_rejects_non_decreasing_values(self):
        with pytest.raises(ValueError, match="strictly decreasing"):
            StepDownwardTUF(values=[5.0, 5.0], deadlines=[0.1, 0.2])

    def test_rejects_non_increasing_deadlines(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            StepDownwardTUF(values=[5.0, 3.0], deadlines=[0.2, 0.1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            StepDownwardTUF(values=[5.0], deadlines=[0.1, 0.2])

    def test_monotone_non_increasing_property(self, tuf):
        delays = np.linspace(0.0, 0.6, 200)
        utils = tuf.utility(delays)
        assert np.all(np.diff(utils) <= 1e-12)

    def test_repr(self, tuf):
        assert "StepDownwardTUF" in repr(tuf)


class TestMonotonicTUF:
    def test_callable_wrapping(self):
        tuf = MonotonicTUF(lambda t: 10.0 * np.exp(-t), deadline=2.0)
        assert tuf.max_value == 10.0
        assert tuf.utility(1.0) == pytest.approx(10.0 * np.exp(-1.0))
        assert tuf.utility(2.5) == 0.0

    def test_vectorized(self):
        tuf = MonotonicTUF(lambda t: 4.0 - t, deadline=3.0)
        out = tuf.utility(np.array([0.0, 1.0, 3.5]))
        assert out.tolist() == [4.0, 3.0, 0.0]

    def test_discretize_approximates(self):
        tuf = MonotonicTUF(lambda t: 10.0 - 2.0 * t, deadline=4.0)
        step = tuf.discretize(num_levels=64)
        assert step.num_levels == 64
        delays = np.linspace(0.05, 3.9, 40)
        # The step TUF samples the left interval edge: upper bound within
        # one step's slope drop.
        max_gap = 2.0 * 4.0 / 64
        for d in delays:
            approx, exact = float(step.utility(d)), float(tuf.utility(d))
            assert exact - 1e-9 <= approx <= exact + max_gap + 1e-9

    def test_discretize_one_level(self):
        tuf = MonotonicTUF(lambda t: 5.0, deadline=1.0)
        step = tuf.discretize(1)
        assert step.num_levels == 1
        assert step.utility(0.5) == 5.0

    def test_discretize_rejects_zero_levels(self):
        tuf = MonotonicTUF(lambda t: 1.0, deadline=1.0)
        with pytest.raises(ValueError):
            tuf.discretize(0)

    def test_discretize_handles_flat_functions(self):
        # Flat segments force the strict-decrease repair path.
        tuf = MonotonicTUF(lambda t: 3.0 if t < 0.5 else 1.0, deadline=1.0)
        step = tuf.discretize(8)
        assert step.num_levels == 8
        assert np.all(np.diff(step.values) < 0)


class TestRequestClass:
    def test_valid(self):
        rc = RequestClass("web", ConstantTUF(10.0, 0.1), transfer_unit_cost=0.01)
        assert rc.deadline == 0.1
        assert rc.num_levels == 1

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RequestClass("", ConstantTUF(1.0, 1.0))

    def test_rejects_non_step_tuf(self):
        mono = MonotonicTUF(lambda t: 1.0, deadline=1.0)
        with pytest.raises(TypeError, match="StepDownwardTUF"):
            RequestClass("web", mono)

    def test_rejects_negative_transfer_cost(self):
        with pytest.raises(ValueError):
            RequestClass("web", ConstantTUF(1.0, 1.0), transfer_unit_cost=-1.0)
