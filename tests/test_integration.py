"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro import (
    BalancedDispatcher,
    MultiElectricityMarket,
    ProfitAwareOptimizer,
    compare_dispatchers,
    evaluate_plan,
    run_simulation,
)
from repro.des.engine import Engine
from repro.des.processes import PoissonArrivals
from repro.des.server import ProcessorSharingServer
from repro.market.prices import paper_locations
from repro.workload.worldcup import worldcup_like_trace


class TestFullDayPipeline:
    """Trace -> market -> optimizer -> evaluation, end to end."""

    @pytest.fixture(scope="class")
    def day_results(self):
        from repro.experiments.section6 import section6_experiment
        exp = section6_experiment()
        return exp, compare_dispatchers(
            [exp.optimizer(), exp.balanced()], exp.trace, exp.market
        )

    def test_optimizer_wins_every_slot(self, day_results):
        _, results = day_results
        opt = results["optimized"].net_profit_series
        bal = results["balanced"].net_profit_series
        assert np.all(opt >= bal - 1e-6)

    def test_profit_positive_all_day(self, day_results):
        _, results = day_results
        assert np.all(results["optimized"].net_profit_series > 0)

    def test_slot_plans_meet_deadlines(self, day_results):
        _, results = day_results
        for record in results["optimized"].records:
            assert record.plan.meets_deadlines()

    def test_farthest_dc_starved_for_request1(self, day_results):
        # Fig. 7's qualitative claim: DC2 (farthest, not cheapest for
        # request1) receives the least request-1 traffic under Optimized.
        _, results = day_results
        totals = np.sum(
            [r.outcome.dc_loads for r in results["optimized"].records], axis=0
        )
        r1 = totals[0]
        assert r1[1] == min(r1)

    def test_powered_on_follows_load(self, day_results):
        exp, results = day_results
        records = results["optimized"].records
        offered = [float(r.arrivals.sum()) for r in records]
        powered = [int(r.plan.powered_on_per_dc().sum()) for r in records]
        # The busiest hour powers on at least as many servers as the
        # quietest hour.
        assert powered[int(np.argmax(offered))] >= powered[int(np.argmin(offered))]


class TestPlanAgainstDES:
    """The optimizer's M/M/1 delay predictions must hold in simulation."""

    def test_simulated_delays_match_plan(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        plan = ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices)
        loads = plan.server_loads()
        predicted = plan.delays()

        # Simulate the most-loaded (class, server) VM.
        k, n = np.unravel_index(np.nanargmax(loads), loads.shape)
        engine = Engine()
        dc_idx = plan._dc_of_server()[n]
        dc = small_topology.datacenters[dc_idx]
        server = ProcessorSharingServer(
            engine, capacity=dc.server_capacity,
            service_rates=dc.service_rates,
            shares=plan.shares[:, n],
        )
        horizon = 3000.0 / loads[k, n]
        PoissonArrivals(
            engine, rate=float(loads[k, n]),
            sink=lambda w: server.arrive(int(k), w),
            seed=11, stop_time=horizon,
        )
        engine.run()
        stats = server.vm(int(k)).stats
        assert stats.count > 1500
        assert stats.mean == pytest.approx(predicted[k, n], rel=0.15)

    def test_realized_profit_reasonably_close_under_des_noise(
        self, small_topology
    ):
        # Evaluate the plan's predicted profit against a jittered
        # realization where each slot's true rate differs by +-5%.
        rng = np.random.default_rng(0)
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        plan = ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices)
        planned = evaluate_plan(plan, arrivals, prices).net_profit
        # The plan dispatches specific rates; with slightly lower true
        # arrivals the controller caps dispatch (simulate via scale).
        from repro.core.controller import _cap_to_arrivals
        noisy = arrivals * rng.uniform(0.95, 1.0, size=arrivals.shape)
        capped = _cap_to_arrivals(plan, noisy)
        realized = evaluate_plan(capped, noisy, prices).net_profit
        assert realized == pytest.approx(planned, rel=0.1)


class TestLibraryPublicAPI:
    def test_quickstart_docstring_flow(self):
        # Mirrors the package docstring example.
        import repro
        assert repro.__version__
        topo = repro.random_topology(seed=1)
        trace = worldcup_like_trace(
            num_classes=topo.num_classes, seed=1
        )
        market = MultiElectricityMarket(list(paper_locations().values()))
        result = run_simulation(
            BalancedDispatcher(topo), trace, market, num_slots=2
        )
        assert result.num_slots == 2

    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestFigureBuilders:
    def test_fig1(self):
        from repro.experiments.figures import fig1_price_series
        series = fig1_price_series()
        assert len(series) == 3
        assert all(v.shape == (24,) for v in series.values())

    def test_fig4(self):
        from repro.experiments.figures import fig4_basic_profit
        data = fig4_basic_profit("low")
        assert data["optimized"]["net_profit"] >= data["balanced"]["net_profit"]

    def test_fig5(self):
        from repro.experiments.figures import fig5_trace_series
        series = fig5_trace_series()
        assert len(series) == 4
        assert all(v.shape == (24,) for v in series.values())

    def test_fig10_regime_validation(self):
        from repro.experiments.figures import fig10_workload_effect
        with pytest.raises(ValueError):
            fig10_workload_effect("medium")

    def test_fig11_returns_positive_times(self):
        from repro.experiments.figures import fig11_computation_time
        times = fig11_computation_time(server_counts=(1, 2), repeats=1)
        assert set(times) == {1, 2}
        assert all(t > 0 for t in times.values())
