"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "multitier_service.py",
]

FULL_EXAMPLES = [
    "worldcup_day.py",
    "google_twolevel.py",
    "model_validation.py",
    "green_energy.py",
    "fault_tolerance.py",
    "capacity_planning.py",
]


def _run(script: str, timeout: float) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamplesExist:
    def test_all_examples_listed(self):
        on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == set(FAST_EXAMPLES) | set(FULL_EXAMPLES)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
class TestFastExamples:
    def test_runs_clean(self, script):
        result = _run(script, timeout=120)
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip()


@pytest.mark.parametrize("script", FULL_EXAMPLES)
class TestFullExamples:
    def test_runs_clean(self, script):
        result = _run(script, timeout=600)
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip()


class TestExampleOutputs:
    def test_quickstart_reports_both_approaches(self):
        result = _run("quickstart.py", timeout=120)
        assert "optimized" in result.stdout
        assert "balanced" in result.stdout
        assert "net profit" in result.stdout
