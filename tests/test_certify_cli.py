"""`repro certify` CLI: exit codes, JSON output, report files, catalog."""

import json

import pytest

from repro.cli import main


class TestExitCodes:
    def test_acceptance_section6_slot0_is_clean(self, capsys):
        """Acceptance: the section-VI day's first slot certifies clean."""
        assert main(["certify"]) == 0
        out = capsys.readouterr().out
        assert "solve(s) certified" in out
        assert "0 error(s)" in out

    def test_section5_certifies_clean(self, capsys):
        assert main(["certify", "--scenario", "section5"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_negative_slot_exits_two(self, capsys):
        assert main(["certify", "--slot", "-1"]) == 2
        assert "--slot" in capsys.readouterr().err

    def test_zero_slots_exits_two(self, capsys):
        assert main(["certify", "--slots", "0"]) == 2
        assert "--slots" in capsys.readouterr().err

    def test_unwritable_report_exits_two(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "report.json"
        assert main(["certify", "--out", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestBackends:
    def test_sparse_path_certifies_clean(self, capsys):
        assert main(["certify", "--sparse"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_simplex_backend_certifies_clean(self, capsys):
        # The dense simplex attaches no duals, so the dual families
        # skip; the primal families must still come back clean.
        assert main(["certify", "--lp-method", "simplex"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_multi_slot_run_counts_all_solves(self, capsys):
        assert main(["certify", "--slots", "3"]) == 0
        out = capsys.readouterr().out
        assert "0..2" in out
        assert "0 error(s)" in out


class TestJsonFormat:
    def test_json_report_shape(self, capsys):
        assert main(["certify", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["details"]["scenario"] == "section6"
        assert payload["details"]["slots_certified"] == [0]
        assert payload["details"]["solves_certified"] >= 1

    def test_out_writes_json_alongside_text(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(["certify", "--out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["summary"]["errors"] == 0
        # stdout stays in text mode
        assert "solve(s) certified" in capsys.readouterr().out


class TestListChecks:
    def test_catalog_lists_all_codes(self, capsys):
        assert main(["certify", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for code in ("CT010", "CT011", "CT020", "CT021", "CT030",
                     "CT031", "CT040", "CT041", "CT050", "CT051"):
            assert code in out


@pytest.mark.parametrize("scenario", ["section5", "section6", "section7"])
def test_every_scenario_certifies_without_errors(scenario, capsys):
    """No canned experiment ships a solve the certifier rejects."""
    assert main(["certify", "--scenario", scenario]) == 0
    capsys.readouterr()
