"""Tests for the open Jackson network (multi-tier extension)."""

import numpy as np
import pytest

from repro.queueing.jackson import JacksonNetwork
from repro.queueing.mm1 import MM1Queue


def tandem(mu1=10.0, mu2=12.0, alpha=6.0):
    """Two stations in series: all of 1's output feeds 2."""
    return JacksonNetwork(
        service_rates=np.array([mu1, mu2]),
        external_arrivals=np.array([alpha, 0.0]),
        routing=np.array([[0.0, 1.0], [0.0, 0.0]]),
    )


class TestTrafficEquations:
    def test_tandem_arrivals(self):
        net = tandem()
        lam = net.effective_arrivals()
        assert lam == pytest.approx([6.0, 6.0])

    def test_feedback_loop(self):
        # Station 0 feeds back to itself with prob 0.5: lambda = 2*alpha.
        net = JacksonNetwork(
            service_rates=np.array([20.0]),
            external_arrivals=np.array([4.0]),
            routing=np.array([[0.5]]),
        )
        assert net.effective_arrivals() == pytest.approx([8.0])

    def test_split_routing(self):
        net = JacksonNetwork(
            service_rates=np.array([30.0, 10.0, 10.0]),
            external_arrivals=np.array([12.0, 0.0, 0.0]),
            routing=np.array([
                [0.0, 0.5, 0.5],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ]),
        )
        assert net.effective_arrivals() == pytest.approx([12.0, 6.0, 6.0])


class TestMetrics:
    def test_station_matches_mm1(self):
        net = tandem()
        station = net.station(0)
        reference = MM1Queue(10.0, 6.0)
        assert station.mean_sojourn_time == reference.mean_sojourn_time

    def test_tandem_network_time_is_sum_of_sojourns(self):
        net = tandem(mu1=10.0, mu2=12.0, alpha=6.0)
        expected = 1.0 / (10.0 - 6.0) + 1.0 / (12.0 - 6.0)
        assert net.mean_network_time() == pytest.approx(expected)
        assert net.mean_path_time(entry=0) == pytest.approx(expected)

    def test_littles_law_consistency(self):
        net = tandem()
        # L_total = alpha_total * W_total.
        assert net.mean_queue_lengths().sum() == pytest.approx(
            net.external_arrivals.sum() * net.mean_network_time()
        )

    def test_visit_counts_with_feedback(self):
        net = JacksonNetwork(
            service_rates=np.array([20.0]),
            external_arrivals=np.array([4.0]),
            routing=np.array([[0.5]]),
        )
        # Geometric number of visits: 1/(1-0.5) = 2.
        assert net.visit_counts(entry=0) == pytest.approx([2.0])

    def test_unstable_network_reports_inf(self):
        net = tandem(mu1=5.0, mu2=12.0, alpha=6.0)
        assert not net.is_stable
        assert net.mean_network_time() == np.inf
        assert net.mean_path_time() == np.inf

    def test_entry_out_of_range(self):
        with pytest.raises(IndexError):
            tandem().visit_counts(entry=5)


class TestValidation:
    def test_rejects_super_stochastic_rows(self):
        with pytest.raises(ValueError, match="sum"):
            JacksonNetwork(
                service_rates=np.array([1.0, 1.0]),
                external_arrivals=np.array([0.1, 0.0]),
                routing=np.array([[0.6, 0.6], [0.0, 0.0]]),
            )

    def test_rejects_absorbing_routing(self):
        with pytest.raises(ValueError, match="spectral"):
            JacksonNetwork(
                service_rates=np.array([1.0]),
                external_arrivals=np.array([0.1]),
                routing=np.array([[1.0]]),
            )

    def test_rejects_no_external_arrivals(self):
        with pytest.raises(ValueError, match="external"):
            JacksonNetwork(
                service_rates=np.array([1.0]),
                external_arrivals=np.array([0.0]),
                routing=np.array([[0.0]]),
            )

    def test_rejects_shape_mismatches(self):
        with pytest.raises(ValueError):
            JacksonNetwork(
                service_rates=np.array([1.0, 2.0]),
                external_arrivals=np.array([1.0]),
                routing=np.zeros((2, 2)),
            )


class TestAgainstDES:
    def test_tandem_network_time_matches_simulation(self):
        # Burke's theorem: the departure process of a stable M/M/1 with
        # Poisson input is Poisson with the same rate, so each tandem
        # stage can be simulated independently and the mean sojourns
        # added — exactly the product-form logic Jackson networks rest on.
        from repro.des.engine import Engine
        from repro.des.measurements import SojournStats
        from repro.des.processes import PoissonArrivals
        from repro.des.server import FCFSQueueServer

        simulated_total = 0.0
        for rate, seed in ((10.0, 8), (12.0, 9)):
            engine = Engine()
            queue = FCFSQueueServer(engine, rate=rate,
                                    stats=SojournStats(warmup_time=100.0))
            PoissonArrivals(engine, rate=6.0, sink=queue.arrive, seed=seed,
                            stop_time=3000.0)
            engine.run()
            simulated_total += queue.stats.mean

        net = tandem(mu1=10.0, mu2=12.0, alpha=6.0)
        assert simulated_total == pytest.approx(
            net.mean_network_time(), rel=0.1
        )
