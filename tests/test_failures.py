"""Tests for failure injection and fault-tolerant re-planning."""

import numpy as np
import pytest

from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.sim.failures import (
    MarkovServerAvailability,
    degraded_topology,
    expand_degraded_plan,
    run_with_failures,
)
from repro.workload.traces import WorkloadTrace


@pytest.fixture
def setup(small_topology):
    rng = np.random.default_rng(1)
    trace = WorkloadTrace(rng.uniform(10.0, 50.0, size=(2, 2, 5)))
    market = MultiElectricityMarket([
        PriceTrace("a", rng.uniform(0.05, 0.12, size=5)),
        PriceTrace("b", rng.uniform(0.05, 0.12, size=5)),
    ])
    return small_topology, trace, market


class TestMarkovAvailability:
    def test_no_failures_when_prob_zero(self, small_topology):
        model = MarkovServerAvailability(small_topology, fail_prob=0.0)
        for _ in range(10):
            assert model.step().tolist() == [3, 2]

    def test_always_fails_respects_floor(self, small_topology):
        model = MarkovServerAvailability(
            small_topology, fail_prob=1.0, repair_prob=0.0, min_up=1
        )
        counts = model.step()
        assert counts.tolist() == [1, 1]
        # And stays at the floor.
        assert model.step().tolist() == [1, 1]

    def test_repairs_bring_servers_back(self, small_topology):
        model = MarkovServerAvailability(
            small_topology, fail_prob=1.0, repair_prob=0.0, min_up=1
        )
        assert model.step().tolist() == [1, 1]  # mass failure to the floor
        # Stop failing, always repair: fleet recovers fully.
        model._fail, model._repair = 0.0, 1.0
        assert model.step().tolist() == [3, 2]

    def test_counts_within_bounds(self, small_topology):
        model = MarkovServerAvailability(
            small_topology, fail_prob=0.3, repair_prob=0.3, seed=5
        )
        for _ in range(50):
            counts = model.step()
            assert np.all(counts >= 1)
            assert counts[0] <= 3 and counts[1] <= 2

    def test_min_up_validated(self, small_topology):
        with pytest.raises(ValueError):
            MarkovServerAvailability(small_topology, min_up=0)


class TestDegradedTopology:
    def test_shrinks_counts(self, small_topology):
        degraded = degraded_topology(small_topology, [2, 1])
        assert degraded.servers_per_datacenter.tolist() == [2, 1]
        # Everything else preserved.
        assert degraded.num_classes == small_topology.num_classes
        assert np.array_equal(degraded.distances, small_topology.distances)

    def test_validates_range(self, small_topology):
        with pytest.raises(ValueError):
            degraded_topology(small_topology, [-1, 2])
        with pytest.raises(ValueError):
            degraded_topology(small_topology, [4, 2])
        with pytest.raises(ValueError):
            degraded_topology(small_topology, [2])

    def test_allows_fully_failed_datacenter(self, small_topology):
        degraded = degraded_topology(small_topology, [0, 2])
        assert degraded.servers_per_datacenter.tolist() == [0, 2]


class TestExpandDegradedPlan:
    def test_failed_servers_carry_nothing(self, small_topology):
        degraded = degraded_topology(small_topology, [2, 1])
        arrivals = np.full((2, 2), 20.0)
        prices = np.array([0.08, 0.08])
        plan = ProfitAwareOptimizer(degraded).plan_slot(arrivals, prices)
        full = expand_degraded_plan(plan, small_topology, [2, 1])
        # Server index 2 (third of dc1) and 4 (second of dc2) are down.
        assert full.server_loads()[:, 2].sum() == 0.0
        assert full.server_loads()[:, 4].sum() == 0.0
        # Totals preserved.
        assert np.allclose(full.served_rates(), plan.served_rates())


class TestRunWithFailures:
    def test_runs_and_accounts(self, setup):
        topo, trace, market = setup
        availability = MarkovServerAvailability(
            topo, fail_prob=0.3, repair_prob=0.5, seed=2
        )
        result = run_with_failures(
            topo, lambda t: ProfitAwareOptimizer(t), trace, market,
            availability,
        )
        assert result.num_slots == 5
        assert result.dispatcher_name == "optimized+failures"
        assert np.all(np.isfinite(result.net_profit_series))

    def test_failures_cost_profit_under_load(self, setup):
        topo, trace, market = setup
        heavy = trace.scaled(6.0)  # saturate so lost servers matter
        baseline = run_with_failures(
            topo, lambda t: ProfitAwareOptimizer(t), heavy, market,
            MarkovServerAvailability(topo, fail_prob=0.0),
        )
        degraded = run_with_failures(
            topo, lambda t: ProfitAwareOptimizer(t), heavy, market,
            MarkovServerAvailability(topo, fail_prob=0.9, repair_prob=0.1,
                                     seed=3),
        )
        assert degraded.total_net_profit < baseline.total_net_profit

    def test_plans_always_feasible(self, setup):
        topo, trace, market = setup
        availability = MarkovServerAvailability(
            topo, fail_prob=0.5, repair_prob=0.5, seed=9
        )
        result = run_with_failures(
            topo, lambda t: ProfitAwareOptimizer(t), trace, market,
            availability,
        )
        for record in result.records:
            assert record.plan.meets_deadlines()
            assert np.all(
                record.plan.rates.sum(axis=2) <= record.arrivals + 1e-6
            )

    def test_apply_pue_reaches_evaluator(self, setup):
        # With PUE > 1 on every DC the facility overhead must inflate
        # the energy bill exactly as in run_simulation.
        import dataclasses
        topo, trace, market = setup
        pue_topo = topo.with_datacenters([
            dataclasses.replace(dc, pue=1.6) for dc in topo.datacenters
        ])
        kwargs = dict(
            trace=trace, market=market,
        )
        raw = run_with_failures(
            pue_topo, lambda t: ProfitAwareOptimizer(t),
            availability=MarkovServerAvailability(pue_topo, fail_prob=0.0),
            apply_pue=False, **kwargs,
        )
        with_pue = run_with_failures(
            pue_topo, lambda t: ProfitAwareOptimizer(t),
            availability=MarkovServerAvailability(pue_topo, fail_prob=0.0),
            apply_pue=True, **kwargs,
        )
        assert with_pue.total_cost > raw.total_cost
        assert with_pue.total_net_profit < raw.total_net_profit

    def test_collector_wired_with_true_slot_indices(self, setup):
        from repro.obs import InMemoryCollector
        topo, trace, market = setup
        collector = InMemoryCollector()
        availability = MarkovServerAvailability(
            topo, fail_prob=0.4, repair_prob=0.4, seed=7
        )
        run_with_failures(
            topo,
            lambda t: ProfitAwareOptimizer(
                t, config=OptimizerConfig(collector=collector)
            ),
            trace, market, availability, collector=collector,
        )
        # Dispatchers are shared across non-contiguous slots, yet each
        # trace carries its true trace-order slot number.
        slots = sorted(t.slot for t in collector.slot_traces)
        assert slots == list(range(trace.num_slots))

    def test_dispatcher_reused_per_availability_signature(self, setup):
        topo, trace, market = setup
        built = []

        def factory(degraded):
            built.append(degraded.servers_per_datacenter.tolist())
            return ProfitAwareOptimizer(degraded)

        run_with_failures(
            topo, factory, trace, market,
            MarkovServerAvailability(topo, fail_prob=0.0),
        )
        # A stable fleet has one signature -> one dispatcher for 5 slots.
        assert built == [[3, 2]]

    def test_reuse_matches_fresh_dispatcher_per_slot(self, setup):
        # Per-signature caching keeps warm state alive across reuses;
        # warm==cold equivalence means objectives must not move.
        topo, trace, market = setup

        def availability():
            return MarkovServerAvailability(
                topo, fail_prob=0.4, repair_prob=0.4, seed=12
            )

        cached = run_with_failures(
            topo,
            lambda t: ProfitAwareOptimizer(
                t, config=OptimizerConfig(warm_start=True)
            ),
            trace, market, availability(),
        )
        cold = run_with_failures(
            topo,
            lambda t: ProfitAwareOptimizer(
                t, config=OptimizerConfig(warm_start=False)
            ),
            trace, market, availability(),
        )
        assert np.allclose(cached.net_profit_series,
                           cold.net_profit_series, rtol=1e-6)
