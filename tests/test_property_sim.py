"""Property-based tests on simulation-level invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

# The topology fixtures are immutable dataclasses, so reusing one across
# hypothesis examples is sound.
fixture_ok = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

from repro.core.baselines import BalancedDispatcher
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.core.rightsizing import consolidate_plan
from repro.market.green import GreenEnergyProfile, apply_green_energy
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.workload.traces import WorkloadTrace

rates_03 = st.floats(0.0, 200.0, allow_nan=False)
prices_pos = st.floats(0.01, 0.3, allow_nan=False)


class TestTraceProperties:
    @given(rates=arrays(float, (2, 2, 5), elements=rates_03),
           shift=st.integers(-7, 7))
    def test_shift_preserves_totals(self, rates, shift):
        trace = WorkloadTrace(rates)
        assert trace.shifted(shift).total_requests() == pytest.approx(
            trace.total_requests(), rel=1e-12
        )

    @given(rates=arrays(float, (2, 2, 5), elements=rates_03),
           factor=st.floats(0.1, 5.0))
    def test_scaling_scales_totals(self, rates, factor):
        trace = WorkloadTrace(rates)
        assert trace.scaled(factor).total_requests() == pytest.approx(
            trace.total_requests() * factor, rel=1e-10, abs=1e-9
        )

    @given(rates=arrays(float, (1, 2, 6), elements=rates_03),
           shift=st.integers(0, 5))
    def test_duplicate_doubles_classes_and_totals(self, rates, shift):
        trace = WorkloadTrace(rates)
        dup = trace.duplicated_as_class(shift)
        assert dup.num_classes == 2
        assert dup.total_requests() == pytest.approx(
            2 * trace.total_requests(), rel=1e-12
        )

    @given(rates=arrays(float, (2, 1, 8), elements=rates_03),
           start=st.integers(0, 7), length=st.integers(1, 8))
    def test_window_slices_consistently(self, rates, start, length):
        trace = WorkloadTrace(rates)
        window = trace.window(start, start + length)
        assert window.num_slots == length
        for t in range(length):
            assert np.array_equal(window.arrivals_at(t),
                                  trace.arrivals_at(start + t))


class TestGreenMarketProperties:
    @given(
        prices=arrays(float, 6, elements=prices_pos),
        coverage=arrays(float, 6,
                        elements=st.floats(0.0, 1.0, allow_nan=False)),
        green_price=st.floats(0.0, 0.05),
    )
    def test_effective_price_between_green_and_brown(
        self, prices, coverage, green_price
    ):
        market = MultiElectricityMarket([PriceTrace("a", prices)])
        profile = GreenEnergyProfile("g", coverage)
        green = apply_green_energy(market, [profile], green_price)
        for t in range(6):
            eff = green.prices_at(t)[0]
            lo = min(prices[t], green_price)
            hi = max(prices[t], green_price)
            assert lo - 1e-12 <= eff <= hi + 1e-12


class TestConsolidationProperties:
    @given(
        arrivals=arrays(float, (2, 2),
                        elements=st.floats(1.0, 150.0, allow_nan=False)),
        p1=prices_pos, p2=prices_pos,
    )
    @fixture_ok
    def test_consolidation_never_increases_fleet(
        self, small_topology, arrivals, p1, p2
    ):
        prices = np.array([p1, p2])
        plan = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(use_spare_capacity=False)).plan_slot(arrivals, prices)
        packed = consolidate_plan(plan)
        assert (packed.powered_on_per_dc().sum()
                <= plan.powered_on_per_dc().sum())
        assert np.allclose(packed.served_rates(), plan.served_rates(),
                           rtol=1e-9)
        assert packed.meets_deadlines()


class TestBalancedProperties:
    @given(
        arrivals=arrays(float, (2, 2),
                        elements=st.floats(0.0, 5000.0, allow_nan=False)),
        p1=prices_pos, p2=prices_pos,
    )
    @fixture_ok
    def test_balanced_never_overdispatches(self, small_topology, arrivals,
                                           p1, p2):
        plan = BalancedDispatcher(small_topology).plan_slot(
            arrivals, np.array([p1, p2])
        )
        assert np.all(plan.rates.sum(axis=2) <= arrivals + 1e-9)
        assert plan.meets_deadlines()

    @given(
        arrivals=arrays(float, (2, 2),
                        elements=st.floats(0.0, 50.0, allow_nan=False)),
        p1=prices_pos, p2=prices_pos,
    )
    @fixture_ok
    def test_balanced_light_load_goes_to_cheapest(self, small_topology,
                                                  arrivals, p1, p2):
        if abs(p1 - p2) < 1e-6:
            return
        plan = BalancedDispatcher(small_topology).plan_slot(
            arrivals, np.array([p1, p2])
        )
        cheapest = 0 if p1 < p2 else 1
        loads = plan.dc_loads().sum(axis=0)
        # All light load lands in the cheapest DC.
        assert loads[1 - cheapest] <= 1e-9 or loads[cheapest] > 0
