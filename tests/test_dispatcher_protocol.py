"""Conformance tests for the public ``Dispatcher`` protocol.

Every shipped dispatcher — the optimizer and both baselines — must
satisfy the protocol both structurally (``isinstance`` against the
``runtime_checkable`` protocol) and behaviourally (``plan_slot`` on
valid inputs returns a consistent :class:`DispatchPlan`).
"""

import numpy as np
import pytest

from repro import Dispatcher
from repro.core.baselines import BalancedDispatcher, EvenSplitDispatcher
from repro.core.controller import SlottedController
from repro.core.optimizer import ProfitAwareOptimizer
from repro.core.plan import DispatchPlan


def shipped_dispatchers(topology):
    return [
        ProfitAwareOptimizer(topology),
        BalancedDispatcher(topology),
        EvenSplitDispatcher(topology),
    ]


class TestProtocolConformance:
    def test_every_shipped_dispatcher_conforms(self, small_topology):
        for dispatcher in shipped_dispatchers(small_topology):
            assert isinstance(dispatcher, Dispatcher), dispatcher
            assert isinstance(dispatcher.name, str) and dispatcher.name

    def test_names_are_distinct(self, small_topology):
        names = [d.name for d in shipped_dispatchers(small_topology)]
        assert len(set(names)) == len(names)
        assert set(names) == {"optimized", "balanced", "even_split"}

    def test_non_dispatcher_rejected_by_isinstance(self):
        class NotADispatcher:
            pass

        assert not isinstance(NotADispatcher(), Dispatcher)

    def test_plan_slot_contract(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.06, 0.10])
        for dispatcher in shipped_dispatchers(small_topology):
            plan = dispatcher.plan_slot(arrivals, prices, slot_duration=1.0)
            assert isinstance(plan, DispatchPlan)
            assert plan.rates.shape == (2, 2, small_topology.num_servers)
            # Never dispatch more than offered (small numerical slack).
            dispatched = plan.rates.sum(axis=2)
            assert np.all(dispatched <= arrivals * (1.0 + 1e-6))

    def test_slotted_controller_accepts_any_dispatcher(
        self, small_topology
    ):
        from repro.market.market import MultiElectricityMarket
        from repro.market.prices import PriceTrace
        from repro.workload.traces import WorkloadTrace

        trace = WorkloadTrace(np.full((2, 2, 3), 30.0))
        market = MultiElectricityMarket([
            PriceTrace("a", np.full(3, 0.06)),
            PriceTrace("b", np.full(3, 0.10)),
        ])
        for dispatcher in shipped_dispatchers(small_topology):
            records = SlottedController(dispatcher, trace, market).run()
            assert len(records) == 3

    def test_streaming_controller_checks_protocol(self, small_topology):
        """The streaming loop drives the same protocol seam."""
        from repro.stream import PeriodicResolve, StreamingController
        from repro.market.market import MultiElectricityMarket
        from repro.market.prices import PriceTrace
        from repro.workload.traces import WorkloadTrace

        trace = WorkloadTrace(np.full((2, 2, 2), 30.0))
        market = MultiElectricityMarket([
            PriceTrace("a", np.full(2, 0.06)),
            PriceTrace("b", np.full(2, 0.10)),
        ])
        for dispatcher in shipped_dispatchers(small_topology):
            assert isinstance(dispatcher, Dispatcher)
            result = StreamingController(
                dispatcher, trace, market, PeriodicResolve(),
                ticks_per_slot=2,
            ).run()
            assert result.num_slots == 2


class TestProtocolShape:
    def test_protocol_is_runtime_checkable(self):
        # A structural object with the right surface conforms without
        # inheriting anything.
        class Minimal:
            name = "minimal"

            def plan_slot(self, arrivals, prices, slot_duration=1.0):
                raise NotImplementedError

        assert isinstance(Minimal(), Dispatcher)

    def test_missing_plan_slot_fails(self):
        class NameOnly:
            name = "name-only"

        assert not isinstance(NameOnly(), Dispatcher)
