"""Property-based warm-start equivalence tests.

Randomized counterpart of ``test_warmstart.py``: across random LPs,
topologies, TUF shapes, price paths, and arrival sequences, a
warm-started solve must match the cold solve's objective to 1e-6
relative tolerance and stay feasible.  Together the suites exercise
well over 200 randomized cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.formulation import (
    FixedLevelLPCache,
    MultilevelMILPCache,
    SlotInputs,
    fixed_level_lp,
    multilevel_milp,
)
from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF, StepDownwardTUF
from repro.solvers.base import LinearProgram
from repro.solvers.interior_point import InteriorPointSolver
from repro.solvers.linprog import solve_lp
from repro.solvers.presolve import solve_with_presolve
from repro.solvers.simplex import SimplexSolver

REL_TOL = 1e-6

finite = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


def _close(a, b, tol=REL_TOL):
    return abs(a - b) <= tol * (1.0 + abs(b))


@st.composite
def lp_pairs(draw, max_vars=7, max_rows=5):
    """A bounded LP plus a same-structure perturbation (new c, new b)."""
    n = draw(st.integers(2, max_vars))
    m = draw(st.integers(1, max_rows))
    a = draw(arrays(float, (m, n), elements=finite))
    upper = np.full(n, draw(st.floats(1.0, 5.0)))

    def instance():
        c = draw(arrays(float, n, elements=finite))
        b = draw(arrays(float, m,
                        elements=st.floats(0.5, 4.0, allow_nan=False)))
        return LinearProgram(c=c, a_ub=a, b_ub=b, upper=upper)

    return instance(), instance()


@st.composite
def random_tufs(draw, max_levels=3):
    """A feasible step-downward (or one-level constant) TUF."""
    num_levels = draw(st.integers(1, max_levels))
    d0 = draw(st.floats(0.01, 0.05))
    v0 = draw(st.floats(5.0, 20.0))
    if num_levels == 1:
        return ConstantTUF(value=v0, deadline=d0)
    deadlines = [d0]
    values = [v0]
    for _ in range(num_levels - 1):
        deadlines.append(deadlines[-1] * draw(st.floats(1.5, 3.0)))
        values.append(values[-1] * draw(st.floats(0.3, 0.8)))
    return StepDownwardTUF(values, deadlines)


@st.composite
def random_topologies(draw, max_levels=3):
    """Small random topologies, feasible by construction.

    With ``mu >= 2000`` and every sub-deadline ``>= 0.01`` each class
    needs at most ``1/(0.01 * 2000) = 5%`` of a server, so even both
    classes at their tightest levels fit comfortably.
    """
    K = draw(st.integers(1, 2))
    S = draw(st.integers(1, 2))
    L = draw(st.integers(1, 2))
    classes = tuple(
        RequestClass(
            f"c{k}", draw(random_tufs(max_levels)),
            transfer_unit_cost=draw(st.floats(1e-5, 1e-3)),
        )
        for k in range(K)
    )
    datacenters = tuple(
        DataCenter(
            f"dc{l}",
            num_servers=draw(st.integers(1, 3)),
            service_rates=np.array(
                [draw(st.floats(2000.0, 6000.0)) for _ in range(K)]
            ),
            energy_per_request=np.array(
                [draw(st.floats(1e-4, 5e-4)) for _ in range(K)]
            ),
        )
        for l in range(L)
    )
    distances = np.array(
        [[draw(st.floats(100.0, 2000.0)) for _ in range(L)]
         for _ in range(S)]
    )
    return CloudTopology(
        request_classes=classes,
        frontends=tuple(FrontEnd(f"fe{s}") for s in range(S)),
        datacenters=datacenters,
        distances=distances,
    )


@st.composite
def slot_sequences(draw, topology, num_slots=2):
    """Random (arrivals, prices) per slot for ``topology``."""
    K, S, L = (topology.num_classes, topology.num_frontends,
               topology.num_datacenters)
    slots = []
    for _ in range(num_slots):
        arrivals = np.array(
            [[draw(st.floats(10.0, 3000.0)) for _ in range(S)]
             for _ in range(K)]
        )
        prices = np.array([draw(st.floats(0.02, 0.15)) for _ in range(L)])
        slots.append((arrivals, prices))
    return slots


class TestSolverLevelEquivalence:
    @given(pair=lp_pairs())
    @settings(max_examples=50, deadline=None)
    def test_simplex_warm_equals_cold(self, pair, certify):
        first, second = pair
        solver = SimplexSolver()
        state = solver.solve(first).state
        warm = solver.solve(second, state=state)
        cold = solver.solve(second)
        assert warm.ok and cold.ok
        assert _close(warm.objective, cold.objective)
        assert second.is_feasible(warm.x, tol=1e-6)
        certify(second, warm)
        certify(second, cold)

    @given(pair=lp_pairs())
    @settings(max_examples=30, deadline=None)
    def test_ipm_warm_equals_cold(self, pair, certify):
        first, second = pair
        solver = InteriorPointSolver()
        state = solver.solve(first).state
        warm = solver.solve(second, state=state)
        reference = solve_lp(second, "highs")
        assert warm.ok and reference.ok
        assert _close(warm.objective, reference.objective)
        assert second.is_feasible(warm.x, tol=1e-6)
        certify(second, warm)
        certify(second, reference)


class TestPipelineEquivalence:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_lp_pipeline(self, data):
        topology = data.draw(random_topologies(max_levels=1))
        slots = data.draw(slot_sequences(topology))
        # certify="error" makes every plan_slot fail loudly if the
        # returned solution flunks an independent CT0xx certificate.
        warm = ProfitAwareOptimizer(topology, config=OptimizerConfig(
            lp_method="simplex", warm_start=True, certify="error"))
        cold = ProfitAwareOptimizer(topology, config=OptimizerConfig(
            lp_method="simplex", warm_start=False, certify="error"))
        for arrivals, prices in slots:
            wp = warm.plan_slot(arrivals, prices)
            w_obj = warm.last_stats.objective
            cold.plan_slot(arrivals, prices)
            c_obj = cold.last_stats.objective
            assert _close(w_obj, c_obj)
            assert np.all(wp.rates >= -1e-9)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_milp_pipeline(self, data):
        topology = data.draw(random_topologies(max_levels=3))
        slots = data.draw(slot_sequences(topology))
        warm = ProfitAwareOptimizer(topology, config=OptimizerConfig(
            level_method="milp", milp_method="bb", warm_start=True,
            certify="error"))
        cold = ProfitAwareOptimizer(topology, config=OptimizerConfig(
            level_method="milp", milp_method="bb", warm_start=False,
            certify="error"))
        for arrivals, prices in slots:
            warm.plan_slot(arrivals, prices)
            cold.plan_slot(arrivals, prices)
            assert _close(warm.last_stats.objective,
                          cold.last_stats.objective)


class TestFormulationCacheProperties:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_cache_equals_fresh_build(self, data):
        topology = data.draw(random_topologies(max_levels=3))
        slots = data.draw(slot_sequences(topology, num_slots=3))
        lp_cache = FixedLevelLPCache(topology)
        milp_cache = MultilevelMILPCache(topology)
        for arrivals, prices in slots:
            inputs = SlotInputs(topology=topology, arrivals=arrivals,
                                prices=prices)
            fresh_lp, _ = fixed_level_lp(inputs)
            cached_lp, _ = lp_cache.build(inputs)
            assert np.array_equal(fresh_lp.c, cached_lp.c)
            assert np.array_equal(fresh_lp.a_ub, cached_lp.a_ub)
            assert np.array_equal(fresh_lp.b_ub, cached_lp.b_ub)
            assert np.array_equal(fresh_lp.upper, cached_lp.upper)
            fresh_mip, _ = multilevel_milp(inputs)
            cached_mip, _ = milp_cache.build(inputs)
            assert np.array_equal(fresh_mip.lp.c, cached_mip.lp.c)
            assert np.array_equal(fresh_mip.lp.a_ub, cached_mip.lp.a_ub)
            assert np.array_equal(fresh_mip.lp.b_ub, cached_mip.lp.b_ub)
            assert np.array_equal(fresh_mip.lp.upper, cached_mip.lp.upper)
            assert np.array_equal(fresh_mip.integer_mask,
                                  cached_mip.integer_mask)


@st.composite
def presolvable_lp_pairs(draw, max_vars=7, max_rows=4):
    """LP pairs where a random subset of variables is pinned.

    Pinned variables make presolve actually reduce the problem, so the
    warm-start state must live (and stay valid) in the reduced space.
    """
    n = draw(st.integers(3, max_vars))
    m = draw(st.integers(1, max_rows))
    a = draw(arrays(float, (m, n), elements=finite))
    upper = np.full(n, draw(st.floats(1.0, 5.0)))
    lower = np.zeros(n)
    pinned = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    if all(pinned):
        pinned[0] = False
    for j, pin in enumerate(pinned):
        if pin:
            value = draw(st.floats(0.0, 1.0))
            lower[j] = upper[j] = value

    def instance():
        c = draw(arrays(float, n, elements=finite))
        b = draw(arrays(float, m,
                        elements=st.floats(2.0, 6.0, allow_nan=False)))
        # b >> max row activity of the pinned block keeps both feasible.
        return LinearProgram(c=c, a_ub=a, b_ub=b, lower=lower, upper=upper)

    return instance(), instance()


class TestPresolveComposition:
    @given(pair=presolvable_lp_pairs())
    @settings(max_examples=50, deadline=None)
    def test_presolve_plus_warm_start_preserves_optimum(self, pair, certify):
        first, second = pair
        sol1 = solve_with_presolve(first, method="simplex")
        if not sol1.ok:
            # Pinned values can make the whole LP infeasible; the
            # reference must agree, and there is nothing to warm-start.
            assert not solve_lp(first, "highs").ok
            return
        certify(first, sol1)
        warm = solve_with_presolve(second, method="simplex",
                                   state=sol1.state)
        reference = solve_lp(second, "highs")
        assert warm.ok == reference.ok
        if reference.ok:
            assert _close(warm.objective, reference.objective)
            assert second.is_feasible(warm.x, tol=1e-6)
            certify(second, warm)
