"""Tests for the green-energy market extension."""

import numpy as np
import pytest

from repro.market.green import (
    GreenEnergyProfile,
    apply_green_energy,
    brown_energy_fraction,
    solar_profile,
    wind_profile,
)
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace


class TestProfiles:
    def test_solar_zero_at_night(self):
        profile = solar_profile(peak_coverage=0.6)
        assert profile.at(2) == pytest.approx(0.0, abs=0.05)
        assert profile.at(13) == pytest.approx(0.6, abs=0.01)

    def test_solar_bounds(self):
        profile = solar_profile(peak_coverage=1.0)
        assert np.all(profile.availability >= 0.0)
        assert np.all(profile.availability <= 1.0)

    def test_wind_mean_and_bounds(self):
        profile = wind_profile(mean_coverage=0.3, num_slots=500, seed=1)
        assert np.all(profile.availability >= 0.0)
        assert np.all(profile.availability <= 1.0)
        assert profile.availability.mean() == pytest.approx(0.3, abs=0.1)

    def test_wind_deterministic(self):
        a = wind_profile(seed=3).availability
        b = wind_profile(seed=3).availability
        assert np.array_equal(a, b)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            GreenEnergyProfile("x", np.array([0.5, 1.2]))
        with pytest.raises(ValueError):
            GreenEnergyProfile("x", np.array([]))

    def test_at_wraps(self):
        profile = GreenEnergyProfile("x", np.array([0.1, 0.9]))
        assert profile.at(3) == 0.9


class TestApplyGreenEnergy:
    @pytest.fixture
    def market(self):
        return MultiElectricityMarket([
            PriceTrace("a", np.array([0.10, 0.10])),
            PriceTrace("b", np.array([0.20, 0.20])),
        ])

    def test_free_green_discounts_price(self, market):
        profile = GreenEnergyProfile("solar", np.array([0.5, 0.0]))
        green = apply_green_energy(market, [profile, None])
        assert green.prices_at(0)[0] == pytest.approx(0.05)
        assert green.prices_at(1)[0] == pytest.approx(0.10)
        # Location b untouched.
        assert green.prices_at(0)[1] == pytest.approx(0.20)

    def test_priced_green(self, market):
        profile = GreenEnergyProfile("ppa", np.array([1.0, 1.0]))
        green = apply_green_energy(market, [profile, None], green_price=0.03)
        assert green.prices_at(0)[0] == pytest.approx(0.03)

    def test_validation(self, market):
        with pytest.raises(ValueError, match="profiles"):
            apply_green_energy(market, [None])
        bad = GreenEnergyProfile("x", np.array([0.5, 0.5, 0.5]))
        with pytest.raises(ValueError, match="slots"):
            apply_green_energy(market, [bad, None])

    def test_green_market_lowers_optimizer_cost(self, small_topology):
        from repro.core.optimizer import ProfitAwareOptimizer
        from repro.core.objective import evaluate_plan
        arrivals = np.full((2, 2), 40.0)
        market = MultiElectricityMarket([
            PriceTrace("a", np.array([0.10])),
            PriceTrace("b", np.array([0.10])),
        ])
        profile = GreenEnergyProfile("solar", np.array([0.8]))
        green = apply_green_energy(market, [profile, profile])
        opt = ProfitAwareOptimizer(small_topology)
        plan_brown = opt.plan_slot(arrivals, market.prices_at(0))
        plan_green = opt.plan_slot(arrivals, green.prices_at(0))
        brown_cost = evaluate_plan(
            plan_brown, arrivals, market.prices_at(0)).energy_cost
        green_cost = evaluate_plan(
            plan_green, arrivals, green.prices_at(0)).energy_cost
        assert green_cost < brown_cost


class TestBrownFraction:
    def test_all_brown_without_profiles(self):
        frac = brown_energy_fraction([None], np.array([[10.0, 10.0]]))
        assert frac == 1.0

    def test_mixed(self):
        profile = GreenEnergyProfile("g", np.array([0.5, 1.0]))
        frac = brown_energy_fraction([profile], np.array([[10.0, 10.0]]))
        # slot 0: 5 brown; slot 1: 0 brown; total 20.
        assert frac == pytest.approx(0.25)

    def test_zero_energy(self):
        assert brown_energy_fraction([None], np.zeros((1, 3))) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            brown_energy_fraction([None, None], np.zeros((1, 2)))
        with pytest.raises(ValueError):
            brown_energy_fraction([None], np.zeros(3))
