"""SolverState serialization and lifecycle.

Warm-start states must survive ``pickle`` — the parallel runner ships
dispatchers across a process pool, and chunk workers carry states
between their slots — and a stale or foreign state must degrade to a
cold start, never to a wrong answer.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    SolverState,
    SolveStatus,
    problem_signature,
)
from repro.solvers.branch_bound import BranchAndBoundSolver
from repro.solvers.interior_point import InteriorPointSolver
from repro.solvers.simplex import SimplexSolver


def _sample_lp(seed=0, n=6, m=4):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, n))
    x0 = rng.uniform(0.5, 1.5, size=n)
    b = a @ x0 + rng.uniform(0.5, 1.0, size=m)
    c = rng.normal(size=n)
    return LinearProgram(c=c, a_ub=a, b_ub=b,
                         lower=np.zeros(n), upper=np.full(n, 10.0))


def _sample_mip(seed=0):
    lp = _sample_lp(seed=seed)
    mask = np.zeros(lp.num_variables, dtype=bool)
    mask[:2] = True
    return MixedIntegerProgram(lp=lp, integer_mask=mask)


def _roundtrip(state):
    return pickle.loads(pickle.dumps(state))


class TestPickleRoundTrip:
    def test_simplex_state(self):
        lp = _sample_lp()
        sol = SimplexSolver().solve(lp)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.state is not None and sol.state.method == "simplex"
        restored = _roundtrip(sol.state)
        assert restored.method == "simplex"
        assert tuple(restored.signature) == problem_signature(lp)
        assert np.array_equal(restored.basis, sol.state.basis)

    def test_ipm_state(self):
        lp = _sample_lp()
        sol = InteriorPointSolver().solve(lp)
        assert sol.status is SolveStatus.OPTIMAL
        restored = _roundtrip(sol.state)
        assert restored.method == "ipm"
        assert np.array_equal(restored.point, sol.state.point)
        assert np.array_equal(restored.dual, sol.state.dual)
        assert np.array_equal(restored.slack, sol.state.slack)

    def test_bb_state(self):
        mip = _sample_mip()
        sol = BranchAndBoundSolver().solve(mip)
        assert sol.status is SolveStatus.OPTIMAL
        restored = _roundtrip(sol.state)
        assert restored.method == "bb"
        assert np.array_equal(restored.point, sol.state.point)

    def test_unpickled_state_warm_starts(self):
        lp = _sample_lp()
        solver = SimplexSolver()
        cold = solver.solve(lp)
        warm = solver.solve(lp, state=_roundtrip(cold.state))
        assert warm.status is SolveStatus.OPTIMAL
        assert np.isclose(warm.objective, cold.objective,
                          rtol=1e-9, atol=1e-9)
        # Re-solving the same LP from its own optimal basis needs no pivots.
        assert warm.iterations == 0


class TestStaleStateFallback:
    def test_signature_mismatch_is_ignored(self):
        small = _sample_lp(seed=1, n=4, m=3)
        big = _sample_lp(seed=2, n=8, m=5)
        solver = SimplexSolver()
        stale = solver.solve(small).state
        assert not stale.matches(big)
        sol = solver.solve(big, state=stale)
        assert sol.status is SolveStatus.OPTIMAL
        reference = solver.solve(big)
        assert np.isclose(sol.objective, reference.objective, rtol=1e-9)

    def test_wrong_method_is_ignored(self):
        lp = _sample_lp()
        simplex_state = SimplexSolver().solve(lp).state
        sol = InteriorPointSolver().solve(lp, state=simplex_state)
        assert sol.status is SolveStatus.OPTIMAL

    def test_corrupted_arrays_fall_back(self):
        lp = _sample_lp()
        solver = SimplexSolver()
        state = solver.solve(lp).state
        bad = SolverState(method="simplex", signature=state.signature,
                          basis=np.array([999, 1000, 1001, 1002]))
        sol = solver.solve(lp, state=bad)
        assert sol.status is SolveStatus.OPTIMAL
        assert np.isclose(sol.objective, solver.solve(lp).objective,
                          rtol=1e-9)


def _solve_with_state(payload):
    """Pool target: warm-solve an LP from a shipped state."""
    lp_parts, state = payload
    lp = LinearProgram(**lp_parts)
    sol = SimplexSolver().solve(lp, state=state)
    return sol.objective, sol.iterations, sol.state


class TestProcessPoolCrossing:
    def test_state_crosses_pool_boundary(self):
        lp = _sample_lp()
        cold = SimplexSolver().solve(lp)
        parts = dict(c=lp.c, a_ub=lp.a_ub, b_ub=lp.b_ub,
                     lower=lp.lower, upper=lp.upper)
        with ProcessPoolExecutor(max_workers=1) as pool:
            objective, iterations, returned = pool.submit(
                _solve_with_state, (parts, cold.state)
            ).result()
        assert np.isclose(objective, cold.objective, rtol=1e-9)
        assert iterations == 0
        # The state that came back is usable locally too.
        again = SimplexSolver().solve(lp, state=returned)
        assert again.iterations == 0
