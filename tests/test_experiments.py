"""Tests for the paper experiment configurations (§V, §VI, §VII)."""

import numpy as np
import pytest

from repro.experiments.section5 import (
    HIGH_ARRIVALS,
    LOW_ARRIVALS,
    section5_arrivals,
    section5_experiment,
    section5_topology,
)
from repro.experiments.section6 import section6_experiment, section6_topology
from repro.experiments.section7 import PRICE_WINDOW, section7_experiment, section7_topology


class TestSection5:
    def test_topology_shape(self):
        topo = section5_topology()
        assert topo.num_classes == 3
        assert topo.num_frontends == 4
        assert topo.num_datacenters == 3
        assert topo.num_servers == 18

    def test_transfer_cost_zero(self):
        # "Transferring cost is not considered in this basic study."
        topo = section5_topology()
        assert np.all(topo.transfer_unit_costs == 0.0)

    def test_arrival_regimes(self):
        low = section5_arrivals("low")
        high = section5_arrivals("high")
        assert low.shape == (3, 4)
        assert high.sum() > 3 * low.sum()
        assert np.array_equal(low, LOW_ARRIVALS.T)
        assert np.array_equal(high, HIGH_ARRIVALS.T)
        with pytest.raises(ValueError):
            section5_arrivals("medium")

    def test_experiment_single_slot(self):
        exp = section5_experiment("low")
        assert exp.trace.num_slots == 1
        assert exp.market.num_slots == 1

    def test_low_load_fits_capacity(self):
        # Both approaches should complete everything at low rates.
        res = section5_experiment("low").run_comparison()
        for result in res.values():
            assert np.allclose(result.completion_fractions, 1.0)

    def test_high_load_overloads(self):
        res = section5_experiment("high").run_comparison()
        for result in res.values():
            assert result.completion_fractions.min() < 1.0

    def test_optimized_processes_more_under_overload(self):
        # The paper's headline §V number: ~16% more requests processed.
        res = section5_experiment("high").run_comparison()
        extra = (res["optimized"].requests_processed
                 / res["balanced"].requests_processed - 1.0)
        assert 0.05 < extra < 0.40

    def test_optimized_nets_more_in_both_regimes(self):
        for regime in ("low", "high"):
            res = section5_experiment(regime).run_comparison()
            assert (res["optimized"].total_net_profit
                    >= res["balanced"].total_net_profit - 1e-6)


class TestSection6:
    def test_topology_structure(self):
        topo = section6_topology()
        assert topo.num_classes == 3
        assert topo.num_frontends == 4
        assert topo.num_servers == 18
        # DC1 == DC2 capacity for request1; DC3 highest (paper §VI-B2).
        mu = topo.service_rates
        assert mu[0, 0] == mu[0, 1]
        assert mu[0, 2] > mu[0, 0]
        # DC2 farthest from every front-end.
        d = topo.distances
        assert np.all(d[:, 1] > d[:, 0])
        assert np.all(d[:, 1] > d[:, 2])

    def test_one_level_tufs(self):
        topo = section6_topology()
        assert all(rc.num_levels == 1 for rc in topo.request_classes)

    def test_experiment_day_long(self):
        exp = section6_experiment()
        assert exp.trace.num_slots == 24
        assert exp.market.num_slots == 24

    def test_trace_deterministic(self):
        a = section6_experiment(seed=7).trace.rates
        b = section6_experiment(seed=7).trace.rates
        assert np.array_equal(a, b)

    def test_load_scale(self):
        base = section6_experiment().trace.total_requests()
        scaled = section6_experiment(load_scale=2.0).trace.total_requests()
        assert scaled == pytest.approx(2 * base)


class TestSection7:
    def test_topology_structure(self):
        topo = section7_topology()
        assert topo.num_classes == 2
        assert topo.num_frontends == 1
        assert topo.num_datacenters == 2
        assert {rc.num_levels for rc in topo.request_classes} == {2}

    def test_price_window(self):
        exp = section7_experiment()
        assert exp.market.num_slots == PRICE_WINDOW[1] - PRICE_WINDOW[0]
        assert exp.trace.num_slots == 7

    def test_capacity_scale(self):
        base = section7_topology().service_rates
        scaled = section7_experiment(capacity_scale=2.0).topology.service_rates
        assert np.allclose(scaled, 2 * base)

    def test_default_regime_matches_paper(self):
        # Optimized completes everything; Balanced drops a few percent.
        res = section7_experiment().run_comparison()
        opt, bal = res["optimized"], res["balanced"]
        assert np.allclose(opt.completion_fractions, 1.0, atol=1e-6)
        assert np.all(bal.completion_fractions < 1.0)
        assert np.all(bal.completion_fractions > 0.85)
        # Optimized pays at least as much total cost (extra volume) yet
        # nets more profit — the §VII-B2 observation.
        assert opt.total_cost >= 0.95 * bal.total_cost
        assert opt.total_net_profit > bal.total_net_profit

    def test_low_workload_regime(self):
        res = section7_experiment(capacity_scale=2.0).run_comparison()
        for result in res.values():
            assert np.allclose(result.completion_fractions, 1.0, atol=1e-3)
        assert (res["optimized"].total_net_profit
                >= res["balanced"].total_net_profit - 1e-6)

    def test_high_workload_regime(self):
        res = section7_experiment(load_scale=2.0).run_comparison()
        for result in res.values():
            assert result.completion_fractions.min() < 1.0
        assert (res["optimized"].total_net_profit
                > res["balanced"].total_net_profit)
