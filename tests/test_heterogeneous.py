"""Tests for the heterogeneous-servers extension."""

import numpy as np
import pytest

from repro.cloud.frontend import FrontEnd
from repro.cloud.heterogeneous import (
    LocationSpec,
    ServerGroup,
    build_heterogeneous_topology,
)
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.market.prices import PriceTrace


@pytest.fixture
def parts():
    classes = (
        RequestClass("r1", ConstantTUF(5.0, 0.05), transfer_unit_cost=1e-4),
    )
    frontends = (FrontEnd("fe1"), FrontEnd("fe2"))
    fast = ServerGroup("fast", count=2,
                       service_rates=np.array([200.0]),
                       energy_per_request=np.array([4e-4]),
                       capacity=1.0)
    slow = ServerGroup("slow", count=4,
                       service_rates=np.array([200.0]),
                       energy_per_request=np.array([2e-4]),
                       capacity=0.5)
    locations = (
        LocationSpec("east", PriceTrace("east", np.array([0.08, 0.10])),
                     distances=np.array([100.0, 900.0]),
                     groups=(fast, slow)),
        LocationSpec("west", PriceTrace("west", np.array([0.06, 0.05])),
                     distances=np.array([2500.0, 300.0]),
                     groups=(fast,)),
    )
    return classes, frontends, locations


class TestBuildHeterogeneousTopology:
    def test_expansion_structure(self, parts):
        classes, frontends, locations = parts
        topo, market = build_heterogeneous_topology(
            classes, frontends, locations
        )
        assert topo.num_datacenters == 3  # east/fast, east/slow, west/fast
        assert [dc.name for dc in topo.datacenters] == [
            "east/fast", "east/slow", "west/fast"
        ]
        assert market.num_locations == 3

    def test_groups_share_location_price_and_distance(self, parts):
        classes, frontends, locations = parts
        topo, market = build_heterogeneous_topology(
            classes, frontends, locations
        )
        # east/fast and east/slow share prices and distances.
        assert np.array_equal(market.prices_at(0)[:2],
                              np.array([0.08, 0.08]))
        assert np.array_equal(topo.distances[:, 0], topo.distances[:, 1])

    def test_capacity_carried_through(self, parts):
        classes, frontends, locations = parts
        topo, _ = build_heterogeneous_topology(classes, frontends, locations)
        assert topo.datacenters[1].server_capacity == 0.5
        assert topo.datacenters[1].num_servers == 4

    def test_optimizer_runs_on_expansion(self, parts):
        from repro.core.objective import evaluate_plan
        from repro.core.optimizer import ProfitAwareOptimizer
        classes, frontends, locations = parts
        topo, market = build_heterogeneous_topology(
            classes, frontends, locations
        )
        arrivals = np.array([[150.0, 120.0]])
        prices = market.prices_at(1)
        plan = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
        out = evaluate_plan(plan, arrivals, prices)
        assert out.net_profit > 0
        assert plan.meets_deadlines()

    def test_fast_servers_preferred_under_tight_deadline(self, parts):
        # Halved-capacity servers admit less per server; at saturation
        # the optimizer leans on the full-capacity group.
        from repro.core.optimizer import ProfitAwareOptimizer
        classes, frontends, locations = parts
        topo, market = build_heterogeneous_topology(
            classes, frontends, locations
        )
        arrivals = np.array([[900.0, 700.0]])  # heavy
        plan = ProfitAwareOptimizer(topo).plan_slot(
            arrivals, market.prices_at(0)
        )
        loads = plan.dc_loads()[0]
        per_server_fast = loads[0] / 2
        per_server_slow = loads[1] / 4
        assert per_server_fast > per_server_slow

    def test_validation(self, parts):
        classes, frontends, locations = parts
        with pytest.raises(ValueError, match="at least one location"):
            build_heterogeneous_topology(classes, frontends, [])
        bad_loc = LocationSpec(
            "x", PriceTrace("x", np.array([0.1, 0.1])),
            distances=np.array([1.0]),  # wrong S
            groups=locations[0].groups,
        )
        with pytest.raises(ValueError, match="distances"):
            build_heterogeneous_topology(classes, frontends, [bad_loc])

    def test_group_validation(self):
        with pytest.raises(ValueError):
            ServerGroup("", 1, np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            ServerGroup("g", 0, np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            LocationSpec("loc", PriceTrace("p", np.array([0.1])),
                         distances=np.array([1.0]), groups=())
