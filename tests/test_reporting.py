"""Tests for markdown report generation."""

import numpy as np
import pytest

from repro.core.baselines import BalancedDispatcher
from repro.core.optimizer import ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.sim.reporting import comparison_report
from repro.sim.slotted import compare_dispatchers
from repro.workload.traces import WorkloadTrace


@pytest.fixture
def results(small_topology):
    rng = np.random.default_rng(4)
    trace = WorkloadTrace(rng.uniform(10.0, 50.0, size=(2, 2, 4)))
    market = MultiElectricityMarket([
        PriceTrace("a", rng.uniform(0.05, 0.12, size=4)),
        PriceTrace("b", rng.uniform(0.05, 0.12, size=4)),
    ])
    return compare_dispatchers(
        [ProfitAwareOptimizer(small_topology),
         BalancedDispatcher(small_topology)],
        trace, market,
    ), small_topology


class TestComparisonReport:
    def test_contains_all_sections(self, results):
        runs, topo = results
        report = comparison_report(runs, topo)
        assert report.startswith("# Simulation comparison")
        assert "## Per-slot net profit" in report
        assert "## Dispatch totals" in report
        assert "## Powered-on servers" in report

    def test_contains_both_approaches(self, results):
        runs, topo = results
        report = comparison_report(runs, topo)
        assert "optimized" in report
        assert "balanced" in report
        assert "% vs balanced" in report

    def test_relative_improvement_against_baseline(self, results):
        runs, topo = results
        report = comparison_report(runs, topo)
        pct = (runs["optimized"].total_net_profit
               / runs["balanced"].total_net_profit - 1) * 100
        assert f"{pct:+.1f}%" in report

    def test_no_baseline(self, results):
        runs, topo = results
        report = comparison_report(runs, topo, baseline=None)
        assert "% vs" not in report

    def test_class_and_dc_labels_present(self, results):
        runs, topo = results
        report = comparison_report(runs, topo)
        for rc in topo.request_classes:
            assert rc.name in report
        for dc in topo.datacenters:
            assert dc.name in report

    def test_empty_rejected(self, results):
        _, topo = results
        with pytest.raises(ValueError):
            comparison_report({}, topo)

    def test_custom_title(self, results):
        runs, topo = results
        assert comparison_report(runs, topo, title="X").startswith("# X")
