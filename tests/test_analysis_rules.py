"""Fixture tests for every reprolint rule: fires on the violation,
stays silent on the compliant rewrite, and honors suppressions."""

import ast

import pytest

from repro.analysis import all_rules, get_rule, lint_source
from repro.analysis.registry import FileContext, Rule, register
from repro.analysis.suppression import (
    SuppressionError,
    collect_suppressions,
)


def codes(report):
    return [d.code for d in report.findings]


def run_rule(code, source, path="src/repro/module.py"):
    """Lint ``source`` with only the one rule under test."""
    return lint_source(source, path=path, rules=[get_rule(code)])


class TestRegistry:
    def test_all_ten_domain_rules_registered(self):
        registered = {rule.code for rule in all_rules()}
        assert {"RP001", "RP002", "RP003", "RP004", "RP005",
                "RP006", "RP007", "RP008", "RP009", "RP010"} <= registered

    def test_rules_carry_metadata(self):
        for rule in all_rules():
            assert rule.name, rule.code
            assert rule.rationale, rule.code

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @register
            class Clone(Rule):
                code = "RP001"
                name = "clone"

    def test_bad_code_rejected(self):
        with pytest.raises(ValueError, match="RPxxx"):
            @register
            class Unnumbered(Rule):
                code = "X1"
                name = "unnumbered"

    def test_unknown_lookup(self):
        with pytest.raises(KeyError, match="RP999"):
            get_rule("RP999")


class TestRP001FloatEquality:
    def test_fires_on_float_literal_eq(self):
        report = run_rule("RP001", "if a == 0.0:\n    pass\n")
        assert codes(report) == ["RP001"]

    def test_fires_on_not_eq_and_reversed_operands(self):
        report = run_rule("RP001", "flag = 1.0 != scale\n")
        assert codes(report) == ["RP001"]

    def test_fires_on_negative_literal_and_float_cast(self):
        assert codes(run_rule("RP001", "b = x == -2.5\n")) == ["RP001"]
        assert codes(run_rule("RP001", "b = x == float('inf')\n")) == ["RP001"]

    def test_fires_inside_comparison_chain(self):
        report = run_rule("RP001", "b = 0 < x == 1.5\n")
        assert codes(report) == ["RP001"]

    def test_silent_on_int_comparison(self):
        assert run_rule("RP001", "if status == 0:\n    pass\n").clean

    def test_silent_on_inequality_guard(self):
        assert run_rule("RP001", "if total <= 0.0:\n    return 0.0\n").clean

    def test_silent_on_isclose(self):
        src = "import math\nok = math.isclose(a, 0.0, abs_tol=1e-12)\n"
        assert run_rule("RP001", src).clean


class TestRP002UnseededRng:
    def test_fires_on_legacy_global(self):
        report = run_rule("RP002", "import numpy as np\nnp.random.seed(0)\n")
        assert codes(report) == ["RP002"]

    def test_fires_on_legacy_distribution_call(self):
        report = run_rule(
            "RP002", "import numpy as np\nx = np.random.normal(0, 1, 10)\n"
        )
        assert codes(report) == ["RP002"]

    def test_fires_on_unseeded_default_rng(self):
        report = run_rule(
            "RP002", "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert codes(report) == ["RP002"]

    def test_fires_on_stdlib_random_import(self):
        assert codes(run_rule("RP002", "import random\n")) == ["RP002"]
        assert codes(run_rule(
            "RP002", "from random import choice\n"
        )) == ["RP002"]

    def test_silent_on_seeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert run_rule("RP002", src).clean

    def test_silent_on_generator_methods(self):
        src = (
            "from repro.utils.rng import as_generator\n"
            "rng = as_generator(7)\n"
            "x = rng.normal(0, 1, 10)\n"
        )
        assert run_rule("RP002", src).clean

    def test_silent_inside_rng_home_module(self):
        src = "import numpy as np\nnp.random.default_rng()\n"
        report = run_rule("RP002", src, path="src/repro/utils/rng.py")
        assert report.clean

    def test_silent_on_unrelated_random_attribute(self):
        # SystemRandom via a non-numpy chain of depth 2 is not legacy use.
        assert run_rule("RP002", "x = obj.random()\n").clean


FROZEN_VIOLATION = """\
from dataclasses import dataclass

@dataclass(frozen=True)
class Config:
    tol: float

    def loosen(self):
        object.__setattr__(self, "tol", self.tol * 10)
"""

FROZEN_OK = """\
from dataclasses import dataclass
import numpy as np

@dataclass(frozen=True)
class Trace:
    values: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "values", np.asarray(self.values))

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)
"""


class TestRP003FrozenMutation:
    def test_fires_outside_post_init(self):
        report = run_rule("RP003", FROZEN_VIOLATION)
        assert codes(report) == ["RP003"]
        assert "loosen" in report.findings[0].message

    def test_fires_at_module_scope(self):
        src = "object.__setattr__(config, 'tol', 1.0)\n"
        report = run_rule("RP003", src)
        assert codes(report) == ["RP003"]
        assert "module scope" in report.findings[0].message

    def test_silent_in_post_init_and_setstate(self):
        assert run_rule("RP003", FROZEN_OK).clean

    def test_silent_on_plain_setattr(self):
        assert run_rule("RP003", "setattr(obj, 'a', 1)\n").clean


SOLVER_VIOLATION = """\
class GradientSolver:
    def solve(self, lp):
        return lp
"""

SOLVER_OK = """\
def solve_lp(lp, method="simplex", state=None, collector=None):
    return lp

class GradientSolver:
    def solve(self, lp, state=None, collector=None):
        return lp

class Helper:
    def solve(self, puzzle):  # not a *Solver class: out of contract scope
        return puzzle

def _solve_inner(lp):  # private helper, not an entry point
    return lp
"""


class TestRP004SolverContract:
    def test_fires_on_method_missing_contract(self):
        report = run_rule(
            "RP004", SOLVER_VIOLATION, path="src/repro/solvers/gradient.py"
        )
        assert codes(report) == ["RP004"]
        assert "GradientSolver.solve" in report.findings[0].message

    def test_fires_on_module_function_missing_contract(self):
        src = "def solve_qp(qp, method='x'):\n    return qp\n"
        report = run_rule("RP004", src, path="src/repro/solvers/qp.py")
        assert codes(report) == ["RP004"]

    def test_silent_on_conforming_module(self):
        report = run_rule(
            "RP004", SOLVER_OK, path="src/repro/solvers/gradient.py"
        )
        assert report.clean

    def test_out_of_scope_module_ignored(self):
        report = run_rule("RP004", SOLVER_VIOLATION, path="src/repro/sim/x.py")
        assert report.clean


POOL_VIOLATION = """\
from concurrent.futures import ProcessPoolExecutor

def run(tasks):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda t: t + 1, task) for task in tasks]
    return futures
"""

POOL_NESTED_DEF = """\
def run(pool, tasks):
    def work(task):
        return task + 1
    return [pool.submit(work, task) for task in tasks]
"""

POOL_OK = """\
def work(task):
    return task + 1

def run(pool, tasks):
    return [pool.submit(work, task) for task in tasks]
"""


class TestRP005PoolPicklability:
    def test_fires_on_lambda_to_submit(self):
        report = run_rule("RP005", POOL_VIOLATION)
        assert codes(report) == ["RP005"]
        assert "lambda" in report.findings[0].message

    def test_fires_on_nested_def_to_submit(self):
        report = run_rule("RP005", POOL_NESTED_DEF)
        assert codes(report) == ["RP005"]
        assert "work" in report.findings[0].message

    def test_fires_on_lambda_to_pool_map(self):
        src = "results = pool.map(lambda x: x * 2, items)\n"
        assert codes(run_rule("RP005", src)) == ["RP005"]

    def test_fires_on_lambda_in_parallel_run_simulation(self):
        src = (
            "parallel_run_simulation(topo, spec, trace, market,\n"
            "                        factory=lambda t: t)\n"
        )
        assert codes(run_rule("RP005", src)) == ["RP005"]

    def test_silent_on_module_level_function(self):
        assert run_rule("RP005", POOL_OK).clean

    def test_silent_on_non_pool_map(self):
        # .map on something that is not a pool/executor (e.g. pandas-ish)
        assert run_rule("RP005", "df.map(lambda x: x + 1)\n").clean


SWALLOW_VIOLATION = """\
def solve(lp, state=None, collector=None):
    try:
        return inner(lp)
    except Exception:
        return None
"""

SWALLOW_OK = """\
import warnings

def solve(lp, state=None, collector=None):
    try:
        return inner(lp)
    except ValueError:
        return None

def chain(lp, failures):
    try:
        return inner(lp)
    except Exception as exc:
        failures.append(str(exc))
        raise
"""

SWALLOW_RECORDED = """\
def chain(lp, stats):
    try:
        return inner(lp)
    except Exception as exc:
        stats.failure = str(exc)
        return None
"""


class TestRP006SwallowedException:
    def test_fires_on_swallowed_broad_except(self):
        report = run_rule(
            "RP006", SWALLOW_VIOLATION, path="src/repro/solvers/x.py"
        )
        assert codes(report) == ["RP006"]

    def test_bare_except_fires_everywhere(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        report = run_rule("RP006", src, path="src/repro/workload/x.py")
        assert codes(report) == ["RP006"]

    def test_silent_on_narrow_except(self):
        report = run_rule("RP006", SWALLOW_OK, path="src/repro/solvers/x.py")
        assert report.clean

    def test_silent_when_failure_recorded(self):
        report = run_rule(
            "RP006", SWALLOW_RECORDED, path="src/repro/core/x.py"
        )
        assert report.clean

    def test_broad_except_out_of_scope_ignored(self):
        report = run_rule(
            "RP006", SWALLOW_VIOLATION, path="src/repro/workload/x.py"
        )
        assert report.clean


MUTABLE_DEFAULT_VIOLATION = """\
def collect(items, bucket=[]):
    bucket.extend(items)
    return bucket
"""

MUTABLE_DEFAULT_OK = """\
def collect(items, bucket=None, tol=1e-9, tag=(), names=frozenset()):
    if bucket is None:
        bucket = []
    bucket.extend(items)
    return bucket
"""


class TestRP007MutableDefault:
    def test_fires_on_list_literal_default(self):
        report = run_rule("RP007", MUTABLE_DEFAULT_VIOLATION)
        assert codes(report) == ["RP007"]
        assert "bucket" in report.findings[0].message

    def test_fires_on_dict_and_set_literals(self):
        assert codes(run_rule("RP007", "def f(a, m={}):\n    pass\n")) == ["RP007"]
        assert codes(run_rule("RP007", "def f(a, s={1}):\n    pass\n")) == ["RP007"]

    def test_fires_on_empty_factory_call(self):
        src = "def f(out=list()):\n    pass\n"
        assert codes(run_rule("RP007", src)) == ["RP007"]

    def test_fires_on_keyword_only_default(self):
        src = "def f(a, *, cache={}):\n    pass\n"
        report = run_rule("RP007", src)
        assert codes(report) == ["RP007"]
        assert "cache" in report.findings[0].message

    def test_fires_in_lambda_and_method(self):
        assert codes(run_rule("RP007", "g = lambda xs=[]: xs\n")) == ["RP007"]
        src = "class C:\n    def add(self, xs=[]):\n        pass\n"
        assert codes(run_rule("RP007", src)) == ["RP007"]

    def test_silent_on_none_sentinel_and_immutables(self):
        assert run_rule("RP007", MUTABLE_DEFAULT_OK).clean

    def test_silent_on_nonempty_factory_call(self):
        # list(seed) re-evaluates per call only if seed is the literal; the
        # rule only targets the unambiguous empty-container spellings.
        assert run_rule("RP007", "def f(seed, xs=tuple('ab')):\n    pass\n").clean


DTYPE_VIOLATION = """\
import numpy as np

def margins(x) -> np.ndarray:
    \"\"\"Per-row slack values.\"\"\"
    return x
"""

DTYPE_OK = """\
import numpy as np

def margins(x) -> np.ndarray:
    \"\"\"Per-row slack values; float64.\"\"\"
    return x

def mask(x) -> np.ndarray:
    \"\"\"Active rows; dtype bool.\"\"\"
    return x

def _helper(x) -> np.ndarray:
    return x

def scalar(x) -> float:
    \"\"\"No array returned.\"\"\"
    return x
"""


class TestRP008ArrayDtypeContract:
    def test_fires_in_core_package(self):
        report = run_rule("RP008", DTYPE_VIOLATION, path="src/repro/core/x.py")
        assert codes(report) == ["RP008"]
        assert "margins" in report.findings[0].message

    def test_fires_in_solvers_package(self):
        report = run_rule(
            "RP008", DTYPE_VIOLATION, path="src/repro/solvers/x.py"
        )
        assert codes(report) == ["RP008"]

    def test_fires_on_missing_docstring(self):
        src = "def rates(x) -> np.ndarray:\n    return x\n"
        report = run_rule("RP008", src, path="src/repro/core/x.py")
        assert codes(report) == ["RP008"]

    def test_silent_when_dtype_documented(self):
        report = run_rule("RP008", DTYPE_OK, path="src/repro/core/x.py")
        assert report.clean

    def test_silent_outside_numerical_packages(self):
        report = run_rule("RP008", DTYPE_VIOLATION, path="src/repro/sim/x.py")
        assert report.clean

    def test_silent_on_private_class_method(self):
        src = (
            "class _Cache:\n"
            "    def rows(self) -> np.ndarray:\n"
            "        return self._rows\n"
        )
        report = run_rule("RP008", src, path="src/repro/core/x.py")
        assert report.clean


class TestRP009ToleranceLiteral:
    def test_fires_on_comparison(self):
        report = run_rule(
            "RP009", "if gap <= 1e-06:\n    pass\n",
            path="src/repro/solvers/x.py",
        )
        assert codes(report) == ["RP009"]

    def test_fires_on_additive_nudge(self):
        report = run_rule(
            "RP009", "bound = b + 1e-08\n", path="src/repro/core/x.py"
        )
        assert codes(report) == ["RP009"]

    def test_fires_on_augmented_assignment(self):
        report = run_rule(
            "RP009", "slack -= 1e-09\n", path="src/repro/solvers/x.py"
        )
        assert codes(report) == ["RP009"]

    def test_fires_on_negative_literal(self):
        report = run_rule(
            "RP009", "if r < -1e-06:\n    pass\n",
            path="src/repro/solvers/x.py",
        )
        assert codes(report) == ["RP009"]

    def test_nested_literal_reported_once(self):
        # The 1e-9 sits in both the Add and the enclosing Compare;
        # dedup by position keeps one finding.
        report = run_rule(
            "RP009", "if x <= base + 1e-09:\n    pass\n",
            path="src/repro/solvers/x.py",
        )
        assert codes(report) == ["RP009"]

    def test_silent_on_model_scale_constant(self):
        report = run_rule(
            "RP009", "if load > 0.5:\n    pass\n",
            path="src/repro/core/x.py",
        )
        assert report.clean

    def test_silent_on_multiplicative_scaling(self):
        # 1e-6 as a scale factor is unit conversion, not a threshold.
        report = run_rule(
            "RP009", "atol = 1e-06 * scale\n", path="src/repro/solvers/x.py"
        )
        assert report.clean

    def test_silent_in_tolerance_home(self):
        report = run_rule(
            "RP009", "STRICT = 1e-12\nLOOSE = STRICT + 1e-06\n",
            path="src/repro/solvers/tolerances.py",
        )
        assert report.clean

    def test_silent_outside_numerical_packages(self):
        report = run_rule(
            "RP009", "if gap <= 1e-06:\n    pass\n",
            path="src/repro/market/x.py",
        )
        assert report.clean

    def test_suppression_honored(self):
        src = "if gap <= 1e-06:  # reprolint: disable=RP009\n    pass\n"
        report = run_rule("RP009", src, path="src/repro/solvers/x.py")
        assert report.clean
        assert report.suppressed == 1


DIV_PATH = "src/repro/core/x.py"


class TestRP010UnguardedDivision:
    def test_fires_on_bare_risky_name(self):
        report = run_rule("RP010", "y = x / rate\n", path=DIV_PATH)
        assert codes(report) == ["RP010"]

    def test_fires_on_attribute_and_subscript(self):
        report = run_rule(
            "RP010",
            "a = q / self.num_servers\nb = x / arrivals[k]\n",
            path=DIV_PATH,
        )
        assert codes(report) == ["RP010", "RP010"]

    def test_fires_in_queueing_and_stream(self):
        for path in ("src/repro/queueing/x.py", "src/repro/stream/x.py"):
            report = run_rule("RP010", "y = x / total_load\n", path=path)
            assert codes(report) == ["RP010"], path

    def test_silent_on_clamped_denominator(self):
        src = (
            "a = x / max(rate, 1e-9)\n"
            "b = x / np.maximum(capacity, eps)\n"
            "c = x / (rate + 1e-9)\n"
        )
        assert run_rule("RP010", src, path=DIV_PATH).clean

    def test_silent_under_positive_branch(self):
        src = "if rate > 0:\n    y = x / rate\n"
        assert run_rule("RP010", src, path=DIV_PATH).clean

    def test_silent_after_early_return_guard(self):
        src = (
            "def f(rate):\n"
            "    if rate == 0:\n"
            "        return 0.0\n"
            "    return x / rate\n"
        )
        assert run_rule("RP010", src, path=DIV_PATH).clean

    def test_silent_inside_np_where_select(self):
        src = "y = np.where(rate > 0, x / rate, 0.0)\n"
        assert run_rule("RP010", src, path=DIV_PATH).clean

    def test_silent_after_assert(self):
        src = "assert rate > 0\ny = x / rate\n"
        assert run_rule("RP010", src, path=DIV_PATH).clean

    def test_silent_in_guarded_ifexp(self):
        src = "y = x / rate if rate else 0.0\n"
        assert run_rule("RP010", src, path=DIV_PATH).clean

    def test_check_positive_validates(self):
        src = (
            "def f(rate):\n"
            '    mu = check_positive(rate, "rate")\n'
            "    return x / mu + y / rate\n"
        )
        assert run_rule("RP010", src, path=DIV_PATH).clean

    def test_post_init_invariant_covers_methods(self):
        src = (
            "class Q:\n"
            "    def __post_init__(self):\n"
            '        check_positive(self.service_rate, "service_rate")\n'
            "        if self.num_servers < 1:\n"
            "            raise ValueError\n"
            "    @property\n"
            "    def rho(self):\n"
            "        return self.arrival / self.service_rate\n"
            "    @property\n"
            "    def per_server(self):\n"
            "        return self.rho / self.num_servers\n"
        )
        assert run_rule("RP010", src, path="src/repro/queueing/x.py").clean

    def test_guard_does_not_leak_into_other_function(self):
        src = (
            "def f(rate):\n"
            "    assert rate > 0\n"
            "    return x / rate\n"
            "def g(rate):\n"
            "    return x / rate\n"
        )
        report = run_rule("RP010", src, path=DIV_PATH)
        assert codes(report) == ["RP010"]
        assert report.findings[0].line == 5

    def test_silent_on_unrecognized_name(self):
        assert run_rule("RP010", "y = x / weight\n", path=DIV_PATH).clean

    def test_silent_outside_scoped_packages(self):
        report = run_rule(
            "RP010", "y = x / rate\n", path="src/repro/solvers/x.py"
        )
        assert report.clean

    def test_suppression_honored(self):
        src = "y = x / rate  # reprolint: disable=RP010\n"
        report = run_rule("RP010", src, path=DIV_PATH)
        assert report.clean
        assert report.suppressed == 1


class TestSuppression:
    def test_inline_suppression_silences_line(self):
        src = "if a == 0.0:  # reprolint: disable=RP001\n    pass\n"
        report = run_rule("RP001", src)
        assert report.clean
        assert report.suppressed == 1

    def test_suppression_is_code_specific(self):
        src = "if a == 0.0:  # reprolint: disable=RP002\n    pass\n"
        report = run_rule("RP001", src)
        assert codes(report) == ["RP001"]

    def test_multi_code_and_all(self):
        src_multi = "if a == 0.0:  # reprolint: disable=RP001,RP002\n    pass\n"
        assert run_rule("RP001", src_multi).clean
        src_all = "if a == 0.0:  # reprolint: disable=all\n    pass\n"
        assert run_rule("RP001", src_all).clean

    def test_file_wide_suppression(self):
        src = (
            "# reprolint: disable-file=RP001\n"
            "a = x == 0.0\n"
            "b = y != 1.5\n"
        )
        report = run_rule("RP001", src)
        assert report.clean
        assert report.suppressed == 2

    def test_directive_inside_string_is_inert(self):
        src = 's = "# reprolint: disable=RP001"\nb = a == 0.0\n'
        report = run_rule("RP001", src)
        assert codes(report) == ["RP001"]

    def test_malformed_directive_is_reported(self):
        with pytest.raises(SuppressionError):
            collect_suppressions("x = 1  # reprolint: disable=BOGUS\n")
        report = run_rule("RP001", "x = 1  # reprolint: disable=\n")
        assert codes(report) == ["RP000"]

    def test_suppression_counts_only_matching_line(self):
        src = (
            "a = x == 0.0  # reprolint: disable=RP001\n"
            "b = y == 0.0\n"
        )
        report = run_rule("RP001", src)
        assert codes(report) == ["RP001"]
        assert report.findings[0].line == 2
        assert report.suppressed == 1


class TestRunner:
    def test_syntax_error_becomes_rp000(self):
        report = lint_source("def broken(:\n", path="src/repro/x.py")
        assert codes(report) == ["RP000"]

    def test_self_lint_is_clean(self):
        """The analysis package passes its own rules (dogfood)."""
        from repro.analysis.runner import lint_paths
        report = lint_paths(["src/repro/analysis"])
        assert report.clean, [str(d) for d in report.findings]

    def test_whole_tree_is_clean(self):
        """Acceptance: `repro lint src` stays clean on the merged tree."""
        from repro.analysis.runner import lint_paths
        report = lint_paths(["src"])
        assert report.clean, [str(d) for d in report.findings]

    def test_missing_path_raises(self):
        from repro.analysis.runner import lint_paths
        with pytest.raises(FileNotFoundError):
            lint_paths(["no/such/dir"])

    def test_windows_paths_normalized(self):
        report = lint_source(
            "class S(GradientSolver):\n    pass\n",
            path="src\\repro\\solvers\\x.py",
        )
        assert report.findings == []
        ctx = FileContext(
            path="src\\repro\\solvers\\x.py", source="", tree=ast.parse("")
        )
        assert ctx.in_package("solvers")
