"""Regression tests pinning behavior at the float-guard boundaries that
RP001 flagged: erlang_c's zero-load short-circuit (queueing/mmc.py) and
brown_energy_fraction's zero-energy guard (market/green.py)."""

import numpy as np
import pytest

from repro.market.green import brown_energy_fraction, solar_profile
from repro.queueing.mmc import MMcQueue, ZERO_LOAD_TOL, erlang_c


class TestErlangCZeroBoundary:
    def test_exact_zero_load(self):
        assert erlang_c(3, 0.0) == 0.0

    def test_negative_zero_load(self):
        assert erlang_c(3, -0.0) == 0.0

    def test_subtolerance_load_short_circuits(self):
        # LP noise: "no traffic" often arrives as ~1e-17, not 0.0.
        assert erlang_c(3, 1e-17) == 0.0
        assert erlang_c(3, ZERO_LOAD_TOL) == 0.0

    def test_above_tolerance_is_computed_and_continuous(self):
        just_above = erlang_c(3, ZERO_LOAD_TOL * 10)
        assert 0.0 < just_above < 1e-9  # tiny but genuine waiting probability
        # The short-circuit introduces no jump: both sides of the
        # threshold round to ~0 at solver tolerances.
        assert abs(just_above - 0.0) < 1e-9

    def test_moderate_load_unchanged(self):
        # Classic Erlang-C value, pinned so the guard rewrite cannot
        # perturb the non-degenerate regime.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0, rel=1e-12)

    def test_queue_properties_at_negligible_load(self):
        q = MMcQueue(num_servers=2, service_rate=5.0, arrival_rate=1e-14)
        assert q.waiting_probability == 0.0
        assert q.mean_waiting_time == 0.0
        assert q.mean_sojourn_time == pytest.approx(1.0 / 5.0)


class TestBrownFractionZeroBoundary:
    def test_exact_zero_energy(self):
        energy = np.zeros((2, 4))
        assert brown_energy_fraction([None, None], energy) == 0.0

    def test_negative_zero_sum(self):
        energy = np.full((1, 3), -0.0)
        assert brown_energy_fraction([None], energy) == 0.0

    def test_tiny_but_real_energy_still_computes(self):
        # A denormal-scale total must not be treated as zero: the ratio
        # is still exactly defined (all brown here).
        energy = np.full((1, 2), 1e-300)
        assert brown_energy_fraction([None], energy) == pytest.approx(1.0)

    def test_mixed_green_ratio_unchanged(self):
        profile = solar_profile(peak_coverage=0.5, num_slots=24)
        energy = np.ones((1, 24))
        frac = brown_energy_fraction([profile], energy)
        expected = float(np.mean(1.0 - profile.availability))
        assert frac == pytest.approx(expected, rel=1e-12)
        assert 0.0 < frac < 1.0
