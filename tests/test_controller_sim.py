"""Tests for the slotted controller and simulation harness."""

import numpy as np
import pytest

from repro.core.baselines import BalancedDispatcher
from repro.core.controller import SlottedController, _cap_to_arrivals
from repro.core.optimizer import ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.sim.accounting import ProfitLedger
from repro.sim.experiment import ExperimentConfig
from repro.sim.metrics import (
    completion_fractions,
    dc_dispatch_series,
    dispatch_matrix,
    net_profit_series,
    powered_on_series,
    relative_improvement,
    total_requests_processed,
)
from repro.sim.slotted import compare_dispatchers, run_simulation
from repro.workload.prediction import KalmanFilterPredictor
from repro.workload.traces import WorkloadTrace


@pytest.fixture
def small_setup(small_topology):
    rng = np.random.default_rng(0)
    rates = rng.uniform(10.0, 60.0, size=(2, 2, 6))
    trace = WorkloadTrace(rates, slot_duration=1.0)
    market = MultiElectricityMarket([
        PriceTrace("a", rng.uniform(0.04, 0.12, size=6)),
        PriceTrace("b", rng.uniform(0.04, 0.12, size=6)),
    ])
    return small_topology, trace, market


class TestSlottedController:
    def test_runs_all_slots(self, small_setup):
        topo, trace, market = small_setup
        controller = SlottedController(
            ProfitAwareOptimizer(topo), trace, market
        )
        records = controller.run()
        assert len(records) == 6
        assert records[3].slot == 3

    def test_num_slots_limit(self, small_setup):
        topo, trace, market = small_setup
        controller = SlottedController(BalancedDispatcher(topo), trace, market)
        assert len(controller.run(num_slots=2)) == 2

    def test_outcomes_use_slot_prices(self, small_setup):
        topo, trace, market = small_setup
        controller = SlottedController(BalancedDispatcher(topo), trace, market)
        for record in controller.run(num_slots=3):
            assert np.array_equal(record.prices, market.prices_at(record.slot))

    def test_predictive_mode_never_overdispatches(self, small_setup):
        topo, trace, market = small_setup
        controller = SlottedController(
            ProfitAwareOptimizer(topo), trace, market,
            predictor_factory=lambda: KalmanFilterPredictor(
                process_var=10.0, observation_var=10.0
            ),
        )
        for record in controller.run():
            dispatched = record.plan.rates.sum(axis=2)
            assert np.all(dispatched <= record.arrivals + 1e-6)

    def test_predictive_profit_close_to_oracle(self, small_setup):
        topo, trace, market = small_setup
        oracle = run_simulation(ProfitAwareOptimizer(topo), trace, market)
        predictive = run_simulation(
            ProfitAwareOptimizer(topo), trace, market,
            predictor_factory=lambda: KalmanFilterPredictor(
                process_var=100.0, observation_var=100.0
            ),
        )
        assert predictive.total_net_profit <= oracle.total_net_profit + 1e-6
        assert predictive.total_net_profit > 0

    def test_cap_to_arrivals(self, small_topology):
        plan = BalancedDispatcher(small_topology).plan_slot(
            np.full((2, 2), 30.0), np.array([0.1, 0.2])
        )
        capped = _cap_to_arrivals(plan, np.full((2, 2), 10.0))
        assert np.all(capped.rates.sum(axis=2) <= 10.0 + 1e-9)


class TestProfitLedger:
    def test_accumulates(self, small_setup):
        topo, trace, market = small_setup
        result = run_simulation(BalancedDispatcher(topo), trace, market)
        ledger = result.ledger
        assert ledger.num_slots == 6
        assert ledger.total_net_profit == pytest.approx(
            ledger.total_revenue - ledger.total_cost
        )
        assert ledger.net_profits.shape == (6,)
        cumulative = ledger.cumulative_net_profit()
        assert cumulative[-1] == pytest.approx(ledger.total_net_profit)
        assert ledger.total_energy_kwh > 0

    def test_record_matches_outcomes(self, small_setup):
        topo, trace, market = small_setup
        result = run_simulation(BalancedDispatcher(topo), trace, market)
        manual = ProfitLedger()
        for record in result.records:
            manual.record(record.outcome)
        assert np.allclose(manual.net_profits, result.ledger.net_profits)


class TestMetrics:
    @pytest.fixture
    def records(self, small_setup):
        topo, trace, market = small_setup
        return run_simulation(ProfitAwareOptimizer(topo), trace, market).records

    def test_net_profit_series(self, records):
        series = net_profit_series(records)
        assert series.shape == (6,)
        assert np.all(np.isfinite(series))

    def test_dispatch_matrix_consistency(self, records):
        matrix = dispatch_matrix(records)
        assert matrix.shape == (6, 2, 2)
        series = dc_dispatch_series(records, k=0, l=1)
        assert np.allclose(series, matrix[:, 0, 1])

    def test_completion_fractions_bounds(self, records):
        frac = completion_fractions(records)
        assert np.all(frac >= 0.0) and np.all(frac <= 1.0)

    def test_powered_on_series(self, records):
        series = powered_on_series(records)
        assert series.shape == (6, 2)
        assert np.all(series >= 0) and np.all(series <= 3)

    def test_total_requests(self, records):
        total = total_requests_processed(records)
        assert total > 0

    def test_relative_improvement(self):
        assert relative_improvement(110.0, 100.0) == pytest.approx(0.1)
        assert relative_improvement(1.0, 0.0) == float("inf")
        assert relative_improvement(0.0, 0.0) == 0.0


class TestCompareDispatchers:
    def test_same_inputs_for_all(self, small_setup):
        topo, trace, market = small_setup
        results = compare_dispatchers(
            [ProfitAwareOptimizer(topo), BalancedDispatcher(topo)],
            trace, market,
        )
        assert set(results) == {"optimized", "balanced"}
        assert (results["optimized"].total_net_profit
                >= results["balanced"].total_net_profit - 1e-6)


class TestExperimentConfig:
    def test_validation(self, small_setup):
        topo, trace, market = small_setup
        config = ExperimentConfig("t", topo, trace, market)
        assert config.name == "t"
        with pytest.raises(ValueError, match="classes"):
            ExperimentConfig("t", topo, trace.select_classes([0]), market)

    def test_market_location_mismatch(self, small_setup):
        topo, trace, market = small_setup
        bad_market = MultiElectricityMarket([PriceTrace("x", np.ones(6))])
        with pytest.raises(ValueError, match="locations"):
            ExperimentConfig("t", topo, trace, bad_market)

    def test_run_comparison(self, small_setup):
        topo, trace, market = small_setup
        config = ExperimentConfig("t", topo, trace, market)
        results = config.run_comparison(num_slots=2)
        assert results["optimized"].num_slots == 2
