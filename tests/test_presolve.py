"""Tests for LP presolve reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.solvers.base import LinearProgram, SolveStatus
from repro.solvers.linprog import solve_lp
from repro.solvers.presolve import presolve, solve_with_presolve


class TestPresolveReductions:
    def test_fixes_pinned_variables(self):
        lp = LinearProgram(
            c=[1.0, 2.0, 3.0],
            a_ub=[[1.0, 1.0, 1.0]], b_ub=[10.0],
            lower=[0.0, 5.0, 0.0],
            upper=[4.0, 5.0, 4.0],
        )
        result = presolve(lp)
        assert result.fixed_variables == 1
        assert result.reduced.num_variables == 2
        assert result.objective_offset == pytest.approx(10.0)
        # Fixed value folded into the rhs: 10 - 5 = 5.
        assert result.reduced.b_ub[0] == pytest.approx(5.0)

    def test_drops_empty_satisfied_rows(self):
        lp = LinearProgram(
            c=[1.0],
            a_ub=[[0.0], [1.0]], b_ub=[3.0, 2.0],
            upper=[5.0],
        )
        result = presolve(lp)
        assert result.dropped_rows >= 1
        assert result.verdict is None

    def test_detects_empty_infeasible_row(self):
        lp = LinearProgram(
            c=[1.0],
            a_ub=[[0.0]], b_ub=[-1.0],
            upper=[5.0],
        )
        assert presolve(lp).verdict is SolveStatus.INFEASIBLE

    def test_drops_redundant_row_by_interval_arithmetic(self):
        # x <= 100 with x in [0, 5] can never bind.
        lp = LinearProgram(c=[-1.0], a_ub=[[1.0]], b_ub=[100.0], upper=[5.0])
        result = presolve(lp)
        assert result.dropped_rows == 1
        assert result.reduced.a_ub is None

    def test_fixed_equality_infeasibility(self):
        lp = LinearProgram(
            c=[1.0], a_eq=[[1.0]], b_eq=[7.0],
            lower=[2.0], upper=[2.0],
        )
        assert presolve(lp).verdict is SolveStatus.INFEASIBLE

    def test_all_variables_fixed_feasible(self):
        lp = LinearProgram(
            c=[3.0], a_ub=[[1.0]], b_ub=[5.0],
            lower=[2.0], upper=[2.0],
        )
        sol = solve_with_presolve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([2.0])
        assert sol.objective == pytest.approx(6.0)

    def test_all_variables_fixed_infeasible(self):
        lp = LinearProgram(
            c=[3.0], a_ub=[[1.0]], b_ub=[1.0],
            lower=[2.0], upper=[2.0],
        )
        assert solve_with_presolve(lp).status is SolveStatus.INFEASIBLE


finite = st.floats(-3.0, 3.0, allow_nan=False)


@st.composite
def lps_with_fixed_vars(draw):
    n = draw(st.integers(3, 7))
    m = draw(st.integers(1, 4))
    c = draw(arrays(float, n, elements=finite))
    a = draw(arrays(float, (m, n), elements=finite))
    b = draw(arrays(float, m, elements=st.floats(0.5, 4.0)))
    lower = np.zeros(n)
    upper = np.full(n, draw(st.floats(1.0, 4.0)))
    # Pin a random subset.
    for j in range(n):
        if draw(st.booleans()):
            pin = draw(st.floats(0.0, 1.0))
            lower[j] = upper[j] = pin
    return LinearProgram(c=c, a_ub=a, b_ub=b, lower=lower, upper=upper)


class TestPresolveEquivalence:
    @given(lp=lps_with_fixed_vars())
    @settings(max_examples=40, deadline=None)
    def test_presolved_matches_direct(self, lp):
        direct = solve_lp(lp, "highs")
        via = solve_with_presolve(lp, "highs")
        assert direct.status == via.status
        if direct.ok:
            assert via.objective == pytest.approx(direct.objective,
                                                  abs=1e-7)
            assert lp.is_feasible(via.x, tol=1e-6)

    @given(lp=lps_with_fixed_vars())
    @settings(max_examples=25, deadline=None)
    def test_presolved_with_own_simplex(self, lp):
        direct = solve_lp(lp, "highs")
        via = solve_with_presolve(lp, "simplex")
        assert direct.status == via.status
        if direct.ok:
            assert via.objective == pytest.approx(direct.objective,
                                                  abs=1e-6)
