"""Tests for the LP machinery: base datatypes, simplex, and the front-end."""

import numpy as np
import pytest

from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    Solution,
    SolveStatus,
    SolverError,
)
from repro.solvers.linprog import solve_lp
from repro.solvers.simplex import SimplexSolver


class TestLinearProgram:
    def test_defaults(self):
        lp = LinearProgram(c=[1.0, 2.0])
        assert lp.num_variables == 2
        assert lp.lower.tolist() == [0.0, 0.0]
        assert np.all(np.isinf(lp.upper))

    def test_num_constraints(self):
        lp = LinearProgram(
            c=[1.0], a_ub=[[1.0]], b_ub=[2.0], a_eq=[[1.0]], b_eq=[1.0]
        )
        assert lp.num_constraints == 2

    def test_rejects_mismatched_b(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[1.0, 2.0])

    def test_rejects_a_without_b(self):
        with pytest.raises(ValueError, match="together"):
            LinearProgram(c=[1.0], a_ub=[[1.0]])

    def test_rejects_crossed_bounds(self):
        with pytest.raises(ValueError, match="bound"):
            LinearProgram(c=[1.0], lower=[2.0], upper=[1.0])

    def test_residuals_and_feasibility(self):
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[1.0])
        assert lp.is_feasible(np.array([0.5, 0.5]))
        assert not lp.is_feasible(np.array([1.0, 1.0]))
        res = lp.residuals(np.array([1.0, 1.0]))
        assert res["ineq"] == pytest.approx(1.0)

    def test_mip_mask_validation(self):
        lp = LinearProgram(c=[1.0, 2.0])
        with pytest.raises(ValueError):
            MixedIntegerProgram(lp=lp, integer_mask=[True])
        mip = MixedIntegerProgram(lp=lp, integer_mask=[True, False])
        assert mip.num_integers == 1

    def test_solution_require_ok(self):
        sol = Solution(status=SolveStatus.INFEASIBLE)
        with pytest.raises(SolverError):
            sol.require_ok()


class TestSimplexBasics:
    def test_simple_maximization(self):
        # max x+y st x+2y<=4, 3x+y<=6  => min -(x+y)
        lp = LinearProgram(
            c=[-1.0, -1.0],
            a_ub=[[1.0, 2.0], [3.0, 1.0]],
            b_ub=[4.0, 6.0],
        )
        sol = SimplexSolver().solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(-2.8)
        assert sol.x == pytest.approx([1.6, 1.2])

    def test_equality_constraints(self):
        # min x+y st x+y=2, x-y=0 -> x=y=1
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_eq=[[1.0, 1.0], [1.0, -1.0]],
            b_eq=[2.0, 0.0],
        )
        sol = SimplexSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([1.0, 1.0])

    def test_infeasible_detected(self):
        lp = LinearProgram(
            c=[1.0], a_eq=[[1.0]], b_eq=[5.0], upper=[1.0]
        )
        sol = SimplexSolver().solve(lp)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_unbounded_detected(self):
        lp = LinearProgram(c=[-1.0], a_ub=[[-1.0]], b_ub=[0.0])
        sol = SimplexSolver().solve(lp)
        assert sol.status is SolveStatus.UNBOUNDED

    def test_upper_bounds_respected(self):
        lp = LinearProgram(c=[-1.0, -1.0], upper=[2.0, 3.0])
        sol = SimplexSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([2.0, 3.0])

    def test_negative_lower_bounds(self):
        # min x with x >= -3.
        lp = LinearProgram(c=[1.0], lower=[-3.0], upper=[5.0])
        sol = SimplexSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([-3.0])

    def test_free_variable(self):
        # min x st x >= -7 encoded via equality with a free variable.
        lp = LinearProgram(
            c=[1.0, 0.0],
            a_eq=[[1.0, -1.0]],
            b_eq=[-7.0],
            lower=[-np.inf, 0.0],
            upper=[np.inf, 0.0],
        )
        sol = SimplexSolver().solve(lp)
        assert sol.ok
        assert sol.x[0] == pytest.approx(-7.0)

    def test_upper_only_variable(self):
        # min -x with x in (-inf, 3]: optimum at 3.
        lp = LinearProgram(c=[-1.0], lower=[-np.inf], upper=[3.0])
        sol = SimplexSolver().solve(lp)
        assert sol.ok
        assert sol.x == pytest.approx([3.0])

    def test_no_constraints_unbounded(self):
        lp = LinearProgram(c=[-1.0])
        assert SimplexSolver().solve(lp).status is SolveStatus.UNBOUNDED

    def test_degenerate_does_not_cycle(self):
        # Classic degenerate LP; Bland's rule must terminate.
        lp = LinearProgram(
            c=[-0.75, 150.0, -0.02, 6.0],
            a_ub=[
                [0.25, -60.0, -0.04, 9.0],
                [0.5, -90.0, -0.02, 3.0],
                [0.0, 0.0, 1.0, 0.0],
            ],
            b_ub=[0.0, 0.0, 1.0],
        )
        sol = SimplexSolver().solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(-0.05)


class TestSimplexAgainstHighs:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_bounded_lps_agree(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 8, 5
        lp = LinearProgram(
            c=rng.normal(size=n),
            a_ub=rng.normal(size=(m, n)),
            b_ub=rng.uniform(0.5, 3.0, size=m),
            upper=np.full(n, 4.0),
        )
        ours = solve_lp(lp, "simplex")
        ref = solve_lp(lp, "highs")
        assert ours.status == ref.status
        if ref.ok:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            assert lp.is_feasible(ours.x, tol=1e-6)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_lps_with_equalities_agree(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 6
        x_feas = rng.uniform(0.0, 1.0, size=n)
        a_eq = rng.normal(size=(2, n))
        lp = LinearProgram(
            c=rng.normal(size=n),
            a_eq=a_eq,
            b_eq=a_eq @ x_feas,  # guaranteed feasible
            upper=np.full(n, 2.0),
        )
        ours = solve_lp(lp, "simplex")
        ref = solve_lp(lp, "highs")
        assert ours.ok and ref.ok
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


class TestSolveLpFrontend:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            solve_lp(LinearProgram(c=[1.0]), method="magic")

    def test_highs_path(self):
        lp = LinearProgram(c=[-1.0], upper=[2.0])
        sol = solve_lp(lp, "highs")
        assert sol.ok
        assert sol.x == pytest.approx([2.0])

    def test_highs_infeasible(self):
        lp = LinearProgram(c=[1.0], a_eq=[[1.0]], b_eq=[5.0], upper=[1.0])
        assert solve_lp(lp, "highs").status is SolveStatus.INFEASIBLE
