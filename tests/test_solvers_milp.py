"""Tests for branch-and-bound MILP, penalty NLP, and level search."""

import numpy as np
import pytest

from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    SolveStatus,
)
from repro.solvers.branch_bound import BranchAndBoundSolver, solve_milp
from repro.solvers.levels import coordinate_descent_levels
from repro.solvers.penalty import NonlinearProgram, PenaltySolver


class TestBranchAndBound:
    def test_knapsack(self):
        # max 10a+6b+4c st a+b+c<=2 (binary) -> pick a,b = 16.
        lp = LinearProgram(
            c=[-10.0, -6.0, -4.0],
            a_ub=[[1.0, 1.0, 1.0]],
            b_ub=[2.0],
            upper=[1.0, 1.0, 1.0],
        )
        mip = MixedIntegerProgram(lp, integer_mask=[True] * 3)
        sol = BranchAndBoundSolver().solve(mip)
        assert sol.ok
        assert sol.objective == pytest.approx(-16.0)
        assert sorted(sol.x.tolist()) == pytest.approx([0.0, 1.0, 1.0])

    def test_integer_rounding_not_valid(self):
        # Fractional relaxation optimum (x=2.5) must branch to x=2.
        lp = LinearProgram(c=[-1.0], a_ub=[[2.0]], b_ub=[5.0])
        mip = MixedIntegerProgram(lp, integer_mask=[True])
        sol = BranchAndBoundSolver().solve(mip)
        assert sol.ok
        assert sol.x == pytest.approx([2.0])

    def test_mixed_continuous_and_integer(self):
        # max x + 10y, x cont <= 3.7, y binary, x + y <= 4.
        lp = LinearProgram(
            c=[-1.0, -10.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[4.0],
            upper=[3.7, 1.0],
        )
        mip = MixedIntegerProgram(lp, integer_mask=[False, True])
        sol = BranchAndBoundSolver().solve(mip)
        assert sol.ok
        assert sol.x == pytest.approx([3.0, 1.0])

    def test_infeasible_integrality(self):
        # 0.4 <= x <= 0.6 with x integer: infeasible.
        lp = LinearProgram(c=[1.0], lower=[0.4], upper=[0.6])
        mip = MixedIntegerProgram(lp, integer_mask=[True])
        sol = BranchAndBoundSolver().solve(mip)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(c=[-1.0])
        mip = MixedIntegerProgram(lp, integer_mask=[True])
        assert BranchAndBoundSolver().solve(mip).status is SolveStatus.UNBOUNDED

    def test_node_budget(self):
        rng = np.random.default_rng(0)
        n = 12
        lp = LinearProgram(
            c=-rng.uniform(1, 2, size=n),
            a_ub=rng.uniform(0.1, 1.0, size=(4, n)),
            b_ub=np.full(4, 2.0),
            upper=np.ones(n),
        )
        mip = MixedIntegerProgram(lp, integer_mask=[True] * n)
        sol = BranchAndBoundSolver(max_nodes=2).solve(mip)
        assert sol.status in (SolveStatus.ITERATION_LIMIT, SolveStatus.OPTIMAL)

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_scipy_milp(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 6, 3
        lp = LinearProgram(
            c=rng.normal(size=n),
            a_ub=rng.uniform(-1, 1, size=(m, n)),
            b_ub=rng.uniform(1, 3, size=m),
            upper=np.full(n, 3.0),
        )
        mask = rng.random(n) < 0.5
        mip = MixedIntegerProgram(lp, integer_mask=mask)
        ours = solve_milp(mip, "bb")
        ref = solve_milp(mip, "highs")
        assert ours.status == ref.status
        if ref.ok:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            # Integrality of our solution.
            assert np.allclose(ours.x[mask], np.round(ours.x[mask]))

    def test_rel_gap_early_stop(self):
        lp = LinearProgram(
            c=[-5.0, -4.0, -3.0],
            a_ub=[[2.0, 3.0, 1.0], [4.0, 1.0, 2.0]],
            b_ub=[5.0, 11.0],
            upper=[10.0] * 3,
        )
        mip = MixedIntegerProgram(lp, integer_mask=[True] * 3)
        sol = BranchAndBoundSolver(rel_gap=0.5).solve(mip)
        assert sol.x is not None

    def test_solve_milp_unknown_method(self):
        lp = LinearProgram(c=[1.0])
        mip = MixedIntegerProgram(lp, integer_mask=[True])
        with pytest.raises(ValueError):
            solve_milp(mip, "magic")


class TestPenaltySolver:
    def test_bound_constrained_quadratic(self):
        nlp = NonlinearProgram(
            objective=lambda x: float((x[0] - 3.0) ** 2),
            lower=np.array([0.0]), upper=np.array([10.0]),
        )
        sol = PenaltySolver().solve(nlp)
        assert sol.ok
        assert sol.x[0] == pytest.approx(3.0, abs=1e-4)

    def test_inequality_constraint(self):
        # min (x-3)^2 st x <= 1 -> x = 1.
        nlp = NonlinearProgram(
            objective=lambda x: float((x[0] - 3.0) ** 2),
            lower=np.array([0.0]), upper=np.array([10.0]),
            ineq=lambda x: np.array([x[0] - 1.0]),
        )
        sol = PenaltySolver().solve(nlp)
        assert sol.ok
        assert sol.x[0] == pytest.approx(1.0, abs=1e-3)

    def test_equality_constraint(self):
        # min x^2+y^2 st x+y=2 -> (1,1).
        nlp = NonlinearProgram(
            objective=lambda x: float(x @ x),
            lower=np.full(2, -5.0), upper=np.full(2, 5.0),
            eq=lambda x: np.array([x[0] + x[1] - 2.0]),
        )
        sol = PenaltySolver().solve(nlp)
        assert sol.ok
        assert sol.x == pytest.approx([1.0, 1.0], abs=1e-3)

    def test_violation_metric(self):
        nlp = NonlinearProgram(
            objective=lambda x: 0.0,
            lower=np.array([0.0]), upper=np.array([1.0]),
            ineq=lambda x: np.array([x[0] - 0.5]),
        )
        assert nlp.violation(np.array([0.8])) == pytest.approx(0.3)
        assert nlp.violation(np.array([0.2])) == 0.0

    def test_infeasible_reported(self):
        # x <= -1 with x in [0, 1]: no feasible point.
        nlp = NonlinearProgram(
            objective=lambda x: float(x[0]),
            lower=np.array([0.0]), upper=np.array([1.0]),
            ineq=lambda x: np.array([x[0] + 1.0]),
        )
        sol = PenaltySolver(multi_start=1).solve(nlp)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_threading_contract_state_and_collector(self):
        # RP004 contract: solve accepts state/collector, emits a reusable
        # state, and a warm re-solve from it lands on the same optimum.
        from repro.obs.collectors import InMemoryCollector

        nlp = NonlinearProgram(
            objective=lambda x: float((x[0] - 3.0) ** 2),
            lower=np.array([0.0]), upper=np.array([10.0]),
        )
        collector = InMemoryCollector()
        cold = PenaltySolver().solve(nlp, collector=collector)
        assert cold.ok
        assert cold.state is not None and cold.state.method == "penalty"
        assert not cold.warm_start_used
        assert collector.counters.get("penalty.starts", 0) > 0

        warm = PenaltySolver().solve(nlp, state=cold.state,
                                     collector=collector)
        assert warm.ok
        assert warm.warm_start_used
        assert warm.x[0] == pytest.approx(cold.x[0], abs=1e-6)
        assert collector.counters.get("penalty.warm_hits", 0) == 1

    def test_stale_state_rejected(self):
        # A state from a different variable count is ignored, not fatal.
        nlp1 = NonlinearProgram(
            objective=lambda x: float(x @ x),
            lower=np.full(2, -1.0), upper=np.full(2, 1.0),
        )
        nlp2 = NonlinearProgram(
            objective=lambda x: float((x[0] - 0.5) ** 2),
            lower=np.array([0.0]), upper=np.array([1.0]),
        )
        state = PenaltySolver().solve(nlp1).state
        sol = PenaltySolver().solve(nlp2, state=state)
        assert sol.ok
        assert not sol.warm_start_used
        assert sol.x[0] == pytest.approx(0.5, abs=1e-4)


class TestCoordinateDescentLevels:
    def test_finds_separable_optimum(self):
        target = (1, 0, 2)

        def evaluate(vec):
            return -sum((a - b) ** 2 for a, b in zip(vec, target))

        best, value, evals = coordinate_descent_levels([3, 2, 3], evaluate)
        assert best == target
        assert value == 0.0
        assert evals >= 1

    def test_respects_initial(self):
        calls = []

        def evaluate(vec):
            calls.append(vec)
            return 0.0

        best, _, _ = coordinate_descent_levels([2], evaluate, initial=[1])
        assert calls[0] == (1,)
        assert best == (1,)

    def test_handles_minus_inf(self):
        def evaluate(vec):
            return -np.inf if vec[0] == 1 else float(vec[0] == 0)

        best, value, _ = coordinate_descent_levels([2], evaluate)
        assert best == (0,)
        assert value == 1.0

    def test_validates_sizes(self):
        with pytest.raises(ValueError):
            coordinate_descent_levels([0], lambda v: 0.0)
        with pytest.raises(ValueError):
            coordinate_descent_levels([2], lambda v: 0.0, initial=[5])
