"""Adversarial tests for the CT0xx optimality certifier.

A certifier earns its keep by *rejecting* corrupted certificates, not
by passing clean ones: each test here takes a known-optimal solve and
breaks exactly one invariant (a basic variable, a dual sign, the
objective, a coupling row, an incumbent's integrality), asserting the
precise ``CT0xx`` code fires.  The §VI acceptance test then certifies a
full simulated day on both the dense and sparse paths.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.certify import (
    CertFinding,
    CertifyRule,
    CertifyThresholds,
    all_certify_rules,
    certify_solution,
    get_certify_rule,
    register_certify,
)
from repro.core.config import OptimizerConfig
from repro.core.formulation import SlotInputs, fixed_level_lp
from repro.core.optimizer import ProfitAwareOptimizer
from repro.obs import InMemoryCollector
from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    Solution,
    SolveStatus,
    SolverError,
)
from repro.solvers.branch_bound import solve_milp
from repro.solvers.linprog import solve_lp


def _codes(report):
    return [f.code for f in report.findings]


def _solved_lp():
    """min -x0 - 2 x1 s.t. x0 + x1 <= 1, x >= 0: optimum (0, 1), -2."""
    lp = LinearProgram(
        c=np.array([-1.0, -2.0]),
        a_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([1.0]),
    )
    return lp, solve_lp(lp, "highs").require_ok()


class TestCleanCertificates:
    def test_highs_solution_certifies_clean_with_duals(self):
        lp, sol = _solved_lp()
        report = certify_solution(lp, sol)
        assert report.clean, report.render_text()
        assert "primal-feasibility" in report.details["checked"]
        assert "dual-feasibility" in report.details["checked"]
        assert "optimality-gap" in report.details["checked"]

    def test_primal_only_backend_skips_dual_families(self):
        lp, sol = _solved_lp()
        report = certify_solution(lp, replace(sol, ineq_marginals=None))
        assert report.clean
        skipped = report.details["skipped"]
        assert "dual-feasibility" in skipped
        assert "optimality-gap" in skipped
        assert "marginal" in skipped["dual-feasibility"]

    def test_mismatched_marginal_shape_degrades_not_crashes(self):
        # Block-local duals with the wrong length must downgrade to a
        # primal-only certification, never index out of bounds.
        lp, sol = _solved_lp()
        report = certify_solution(
            lp, replace(sol, ineq_marginals=np.array([-2.0, 0.0]))
        )
        assert report.clean
        assert "dual-feasibility" in report.details["skipped"]

    def test_report_records_recomputed_objective(self):
        lp, sol = _solved_lp()
        report = certify_solution(lp, sol)
        assert report.details["primal_objective"] == pytest.approx(-2.0)
        assert report.details["reported_objective"] == pytest.approx(-2.0)


class TestAdversarialCorruption:
    def test_bound_violation_is_ct010(self):
        lp, sol = _solved_lp()
        bad = sol.x.copy()
        bad[0] = -0.5
        report = certify_solution(lp, replace(sol, x=bad))
        assert "CT010" in _codes(report)
        assert not report.clean

    def test_nonfinite_point_is_ct010(self):
        lp, sol = _solved_lp()
        bad = sol.x.copy()
        bad[1] = np.nan
        report = certify_solution(lp, replace(sol, x=bad))
        assert _codes(report)[0] == "CT010"
        assert "non-finite" in report.findings[0].message

    def test_row_violation_is_ct011(self):
        lp, sol = _solved_lp()
        report = certify_solution(
            lp, replace(sol, x=np.array([1.0, 1.0]))
        )
        assert "CT011" in _codes(report)

    def test_flipped_dual_sign_is_ct020(self):
        lp, sol = _solved_lp()
        flipped = -np.asarray(sol.ineq_marginals)
        report = certify_solution(
            lp, replace(sol, ineq_marginals=flipped)
        )
        assert "CT020" in _codes(report)

    def test_wrong_reduced_cost_sign_is_ct021(self):
        lp, sol = _solved_lp()
        # y = 0 makes the reduced cost of the basic variable x1 equal
        # to c1 = -2 != 0: an interior/basic variable with a nonzero
        # reduced cost is no certificate of optimality.
        report = certify_solution(
            lp, replace(sol, ineq_marginals=np.zeros(1))
        )
        assert "CT021" in _codes(report)

    def test_slack_row_with_multiplier_is_ct030(self):
        lp = LinearProgram(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0], [1.0, 0.0]]),
            b_ub=np.array([1.0, 5.0]),
        )
        sol = solve_lp(lp, "highs").require_ok()
        # Row 1 has slack 5 at the optimum (0, 1); charge it anyway.
        corrupt = np.asarray(sol.ineq_marginals).copy()
        corrupt[1] = -1.0
        report = certify_solution(
            lp, replace(sol, ineq_marginals=corrupt)
        )
        assert "CT030" in _codes(report)

    def test_corrupted_objective_is_ct031(self):
        lp, sol = _solved_lp()
        report = certify_solution(lp, replace(sol, objective=-3.5))
        assert "CT031" in _codes(report)
        assert not report.clean

    def test_fractional_incumbent_is_ct040(self):
        lp, _ = _solved_lp()
        mip = MixedIntegerProgram(lp, integer_mask=[True, True])
        sol = solve_milp(mip, "bb").require_ok()
        report = certify_solution(mip, sol)
        assert report.clean, report.render_text()
        bad = sol.x.copy()
        bad[1] = 0.5
        corrupted = certify_solution(
            mip, replace(sol, x=bad, objective=float(lp.c @ bad))
        )
        assert "CT040" in _codes(corrupted)

    def test_impossible_bound_sandwich_is_ct041_error(self):
        lp, _ = _solved_lp()
        mip = MixedIntegerProgram(lp, integer_mask=[True, True])
        sol = solve_milp(mip, "bb").require_ok()
        report = certify_solution(mip, replace(sol, gap=-1.0))
        errors = [f.code for f in report.errors]
        assert "CT041" in errors

    def test_loose_bound_sandwich_is_ct041_warning(self):
        lp, _ = _solved_lp()
        mip = MixedIntegerProgram(lp, integer_mask=[True, True])
        sol = solve_milp(mip, "bb").require_ok()
        report = certify_solution(mip, replace(sol, gap=0.5))
        assert "CT041" in _codes(report)
        assert report.clean  # warning, not error

    def test_violated_coupling_row_is_ct050(self):
        lp, sol = _solved_lp()
        report = certify_solution(
            lp,
            replace(sol, x=np.array([1.0, 1.0])),
            coupling_rows=np.array([0]),
        )
        assert "CT050" in _codes(report)

    def test_no_solution_vector_is_ct010(self):
        lp, _ = _solved_lp()
        sol = Solution(status=SolveStatus.INFEASIBLE)
        report = certify_solution(lp, sol)
        assert _codes(report) == ["CT010"]
        assert report.details["skipped"] == {"all": "no solution vector"}


class TestProfitIdentity:
    def _solved_slot(self, topology):
        arrivals = np.full(
            (topology.num_classes, topology.num_frontends), 40.0
        )
        prices = np.full(topology.num_datacenters, 0.05)
        inputs = SlotInputs(
            topology=topology, arrivals=arrivals, prices=prices
        )
        lp, decoder = fixed_level_lp(inputs)
        sol = solve_lp(lp, "highs").require_ok()
        return inputs, lp, sol, decoder(sol.x)

    def test_decoded_plan_certifies_clean(self, small_topology):
        inputs, lp, sol, plan = self._solved_slot(small_topology)
        report = certify_solution(lp, sol, inputs=inputs, plan=plan)
        assert report.clean, report.render_text()
        assert "decomposition-invariants" in report.details["checked"]

    def test_profit_shortfall_is_ct051_error(self, small_topology):
        inputs, lp, sol, plan = self._solved_slot(small_topology)
        # Claim one more unit of profit than the plan can realize.
        report = certify_solution(
            lp,
            replace(sol, objective=float(sol.objective) - 1.0),
            inputs=inputs,
            plan=plan,
        )
        errors = [f.code for f in report.errors]
        assert "CT051" in errors

    def test_profit_overshoot_is_info_not_error(self, small_topology):
        inputs, lp, sol, plan = self._solved_slot(small_topology)
        # Claiming *less* than realized is legitimate for step TUFs
        # (realized delays can land in a better band): info severity.
        # Drop the duals so the (also-corrupted) duality gap does not
        # fire alongside; the profit identity is what is under test.
        report = certify_solution(
            lp,
            replace(sol, objective=float(sol.objective) + 1.0,
                    ineq_marginals=None),
            inputs=inputs,
            plan=plan,
        )
        assert report.clean
        assert any(
            f.code == "CT051" and f.severity == "info"
            for f in report.findings
        )


class TestRegistry:
    def test_five_families_sorted_by_lead_code(self):
        leads = [rule.code for rule in all_certify_rules()]
        assert leads == ["CT010", "CT020", "CT030", "CT040", "CT050"]

    def test_lookup_by_member_code(self):
        assert get_certify_rule("CT021").name == "dual-feasibility"
        assert get_certify_rule("CT051").name == "decomposition-invariants"
        with pytest.raises(KeyError):
            get_certify_rule("CT999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_certify
            class Clone(CertifyRule):
                code = "CT010"
                codes = {"CT010": "clone"}
                name = "clone"
                rationale = "clone"

    def test_finding_validation(self):
        with pytest.raises(ValueError):
            CertFinding(code="XX1", severity="error",
                        component="c", message="m")
        with pytest.raises(ValueError):
            CertFinding(code="CT010", severity="fatal",
                        component="c", message="m")

    def test_rules_carry_metadata(self):
        for rule in all_certify_rules():
            assert rule.name and rule.rationale, rule.code
            assert rule.code in rule.codes


class TestOptimizerWiring:
    def _run_slot(self, topology, **config_kwargs):
        collector = InMemoryCollector()
        config = OptimizerConfig(collector=collector, **config_kwargs)
        optimizer = ProfitAwareOptimizer(topology, config=config)
        arrivals = np.full(
            (topology.num_classes, topology.num_frontends), 40.0
        )
        prices = np.full(topology.num_datacenters, 0.05)
        optimizer.plan_slot(arrivals, prices)
        return collector

    def test_warn_mode_records_clean_certificates(self, small_topology):
        collector = self._run_slot(small_topology, certify="warn")
        assert collector.counters.get("optimizer.certifies", 0) == 1
        trace = collector.slot_traces[0]
        assert trace.certificates == []

    def test_off_mode_never_certifies(self, small_topology):
        collector = self._run_slot(small_topology, certify="off")
        assert "optimizer.certifies" not in collector.counters
        assert collector.slot_traces[0].certificates == []

    def test_error_mode_passes_on_clean_solves(self, small_topology):
        collector = self._run_slot(small_topology, certify="error")
        assert collector.counters.get("optimizer.certifies", 0) == 1

    def test_error_mode_raises_on_bad_certificate(
        self, small_topology, monkeypatch
    ):
        # Corrupt the objective between solve and certification so the
        # gate sees an uncertifiable answer on an otherwise-fine path.
        from repro.core import optimizer as opt_mod

        original = opt_mod.ProfitAwareOptimizer._solve_lp

        def corrupting(self, inputs, lp_method=None, max_iterations=None):
            plan, stats = original(
                self, inputs, lp_method=lp_method,
                max_iterations=max_iterations,
            )
            payload = stats.get("certify")
            assert payload is not None
            payload["solution"] = replace(
                payload["solution"],
                objective=float(payload["solution"].objective) - 10.0,
            )
            return plan, stats

        monkeypatch.setattr(
            opt_mod.ProfitAwareOptimizer, "_solve_lp", corrupting
        )
        with pytest.raises(SolverError, match="CT0"):
            self._run_slot(
                small_topology, certify="error", fallback=False
            )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="certify"):
            OptimizerConfig(certify="loud")

    def test_certificates_round_trip_jsonl(self):
        from repro.obs.trace import SlotTrace

        trace = SlotTrace(
            slot=0, method="lp", formulation="fixed", warm_start="cold",
            objective=-1.0, total_time=0.1,
            certificates=[{
                "code": "CT031", "severity": "error",
                "component": "gap.objective", "message": "gap", "data": {},
            }],
        )
        again = SlotTrace.from_json(trace.to_json())
        assert again.certificates == trace.certificates


@pytest.mark.parametrize("sparse", [False, True], ids=["dense", "sparse"])
def test_section6_day_certifies_clean(sparse):
    """Acceptance: every solve of the §VI day passes verification."""
    from repro.experiments.section6 import section6_experiment

    exp = section6_experiment()
    collector = InMemoryCollector()
    config = OptimizerConfig(
        sparse=sparse, certify="warn", collector=collector
    )
    optimizer = ProfitAwareOptimizer(exp.topology, config=config)
    for slot in range(exp.trace.num_slots):
        optimizer.plan_slot(
            exp.trace.arrivals_at(slot), exp.market.prices_at(slot)
        )
    errors = [
        record
        for trace in collector.slot_traces
        for record in trace.certificates
        if record["severity"] == "error"
    ]
    assert errors == []
    certified = collector.counters.get("optimizer.certifies", 0)
    skipped = collector.counters.get("optimizer.certify_skipped", 0)
    assert certified + skipped == exp.trace.num_slots
    assert certified > 0
