"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import RandomStreams, as_generator


class TestAsGenerator:
    def test_from_int(self):
        gen = as_generator(42)
        assert isinstance(gen, np.random.Generator)

    def test_from_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_same_seed_same_draws(self):
        a = as_generator(5).random(4)
        b = as_generator(5).random(4)
        assert np.array_equal(a, b)


class TestRandomStreams:
    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("arrivals") is streams.stream("arrivals")

    def test_streams_are_independent_of_creation_order(self):
        s1 = RandomStreams(123)
        s2 = RandomStreams(123)
        # Create in opposite order; named streams must still match.
        a1 = s1.stream("a").random(3)
        b1 = s1.stream("b").random(3)
        b2 = s2.stream("b").random(3)
        a2 = s2.stream("a").random(3)
        assert np.array_equal(a1, a2)
        assert np.array_equal(b1, b2)

    def test_different_names_differ(self):
        streams = RandomStreams(9)
        a = streams.stream("x").random(8)
        b = streams.stream("y").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("s").random(8)
        b = RandomStreams(2).stream("s").random(8)
        assert not np.array_equal(a, b)

    def test_spawn_returns_new_streams(self):
        parent = RandomStreams(3)
        child = parent.spawn()
        assert isinstance(child, RandomStreams)
        a = parent.stream("s").random(4)
        b = child.stream("s").random(4)
        assert not np.array_equal(a, b)


class TestTables:
    def test_render_basic(self):
        from repro.utils.tables import render_table
        text = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch(self):
        import pytest
        from repro.utils.tables import render_table
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        from repro.utils.tables import render_table
        text = render_table(["v"], [[0.123456]], float_fmt=".2f")
        assert "0.12" in text
