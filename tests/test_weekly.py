"""Tests for the weekly workload generator."""

import numpy as np
import pytest

from repro.workload.weekly import DEFAULT_DAY_FACTORS, weekly_trace


class TestWeeklyTrace:
    def test_shape(self):
        trace = weekly_trace(num_classes=3, num_frontends=2, days=7)
        assert trace.num_classes == 3
        assert trace.num_frontends == 2
        assert trace.num_slots == 7 * 24

    def test_weekend_quieter(self):
        trace = weekly_trace(days=7, noise=0.0, seed=1)
        daily_totals = trace.rates.sum(axis=(0, 1)).reshape(7, 24).sum(axis=1)
        weekday_mean = daily_totals[:5].mean()
        weekend_mean = daily_totals[5:].mean()
        assert weekend_mean < 0.75 * weekday_mean

    def test_day_factor_cycle_beyond_week(self):
        trace = weekly_trace(days=14, noise=0.0, seed=2)
        totals = trace.rates.sum(axis=(0, 1)).reshape(14, 24).sum(axis=1)
        assert totals[0] == pytest.approx(totals[7], rel=1e-9)

    def test_drift_compounds(self):
        # Single class with zero shift so day boundaries stay clean.
        trace = weekly_trace(num_classes=1, days=10, noise=0.0,
                             drift_per_day=0.05, day_factors=[1.0],
                             shift_slots=0, seed=3)
        totals = trace.rates.sum(axis=(0, 1)).reshape(10, 24).sum(axis=1)
        assert totals[9] == pytest.approx(totals[0] * 1.05**9, rel=1e-9)

    def test_diurnal_within_each_day(self):
        trace = weekly_trace(days=3, noise=0.0, seed=4)
        day0 = trace.class_series(0, 0)[:24]
        assert day0[12:20].mean() > 1.5 * day0[0:5].mean()

    def test_classes_are_shifts(self):
        trace = weekly_trace(num_classes=2, days=2, shift_slots=3,
                             noise=0.0, seed=5)
        assert np.allclose(np.roll(trace.class_series(0, 0), 3),
                           trace.class_series(1, 0))

    def test_deterministic(self):
        a = weekly_trace(seed=6).rates
        b = weekly_trace(seed=6).rates
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            weekly_trace(days=0)
        with pytest.raises(ValueError):
            weekly_trace(day_factors=[])
        with pytest.raises(ValueError):
            weekly_trace(drift_per_day=-1.5)

    def test_default_factors_weekend_dip(self):
        factors = np.asarray(DEFAULT_DAY_FACTORS)
        assert factors[5:].max() < factors[:5].min()

    def test_runs_through_controller(self, small_topology):
        from repro.core.baselines import BalancedDispatcher
        from repro.market.market import MultiElectricityMarket
        from repro.market.prices import houston_profile, atlanta_profile
        from repro.sim.slotted import run_simulation
        trace = weekly_trace(num_classes=2, num_frontends=2, days=2,
                             base=20.0, amplitude=60.0, seed=7)
        market = MultiElectricityMarket(
            [houston_profile(), atlanta_profile()]
        )
        result = run_simulation(
            BalancedDispatcher(small_topology), trace, market
        )
        assert result.num_slots == 48
        assert result.total_net_profit > 0
