"""Tests for the idle-power extension (beyond the paper's energy model)."""

import dataclasses

import numpy as np
import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.core.rightsizing import consolidate_plan


def with_idle(topology, idle_kw):
    return topology.with_datacenters([
        dataclasses.replace(dc, idle_power_kw=idle_kw)
        for dc in topology.datacenters
    ])


class TestIdleCostAccounting:
    def test_zero_idle_reproduces_paper(self, small_topology):
        arrivals = np.full((2, 2), 30.0)
        prices = np.array([0.1, 0.1])
        plan = ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices)
        out = evaluate_plan(plan, arrivals, prices)
        assert out.idle_cost == 0.0

    def test_idle_cost_hand_computed(self, small_topology):
        topo = with_idle(small_topology, idle_kw=0.4)
        arrivals = np.full((2, 2), 30.0)
        prices = np.array([0.10, 0.20])
        plan = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
        out = evaluate_plan(plan, arrivals, prices, slot_duration=2.0)
        powered = plan.powered_on_per_dc()
        expected = (0.4 * powered[0] * 2.0 * 0.10
                    + 0.4 * powered[1] * 2.0 * 0.20)
        assert out.idle_cost == pytest.approx(expected)
        assert out.total_cost == pytest.approx(
            out.energy_cost + out.transfer_cost + out.idle_cost
        )

    def test_idle_energy_counted_in_kwh(self, small_topology):
        topo = with_idle(small_topology, idle_kw=0.4)
        arrivals = np.full((2, 2), 30.0)
        prices = np.array([0.1, 0.1])
        plan = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
        base = evaluate_plan(plan, arrivals, prices)
        plain = evaluate_plan(
            ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices),
            arrivals, prices,
        )
        assert base.energy_kwh > plain.energy_kwh

    def test_pue_multiplies_idle(self, small_topology):
        topo = with_idle(small_topology, idle_kw=0.4)
        topo_pue = topo.with_datacenters([
            dataclasses.replace(dc, pue=1.5) for dc in topo.datacenters
        ])
        arrivals = np.full((2, 2), 30.0)
        prices = np.array([0.1, 0.1])
        plan = ProfitAwareOptimizer(topo_pue).plan_slot(arrivals, prices)
        without = evaluate_plan(plan, arrivals, prices, apply_pue=False)
        with_pue = evaluate_plan(plan, arrivals, prices, apply_pue=True)
        assert with_pue.idle_cost == pytest.approx(1.5 * without.idle_cost)


class TestIdlePowerMakesConsolidationPay:
    def test_consolidation_strictly_profitable(self, small_topology):
        # Under the paper's model consolidation is profit-neutral; with
        # idle power it saves real dollars.
        topo = with_idle(small_topology, idle_kw=0.4)
        arrivals = np.full((2, 2), 10.0)  # light load, spread plan
        prices = np.array([0.10, 0.15])
        spread = ProfitAwareOptimizer(topo, config=OptimizerConfig(consolidate=False, use_spare_capacity=False)).plan_slot(arrivals, prices)
        packed = consolidate_plan(spread)
        profit_spread = evaluate_plan(spread, arrivals, prices).net_profit
        profit_packed = evaluate_plan(packed, arrivals, prices).net_profit
        assert packed.powered_on_per_dc().sum() < spread.powered_on_per_dc().sum()
        assert profit_packed > profit_spread

    def test_savings_scale_with_idle_power(self, small_topology):
        arrivals = np.full((2, 2), 10.0)
        prices = np.array([0.10, 0.15])
        gains = []
        for idle in (0.2, 0.8):
            topo = with_idle(small_topology, idle)
            spread = ProfitAwareOptimizer(topo, config=OptimizerConfig(consolidate=False, use_spare_capacity=False)).plan_slot(arrivals, prices)
            packed = consolidate_plan(spread)
            gains.append(
                evaluate_plan(packed, arrivals, prices).net_profit
                - evaluate_plan(spread, arrivals, prices).net_profit
            )
        assert gains[1] > gains[0] > 0

    def test_serialization_round_trips_idle_power(self, small_topology):
        from repro.utils.serialization import (
            topology_from_dict, topology_to_dict,
        )
        topo = with_idle(small_topology, idle_kw=0.7)
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert all(dc.idle_power_kw == 0.7 for dc in rebuilt.datacenters)
