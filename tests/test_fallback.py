"""Tests for the fault-tolerant slot pipeline (fallback chain).

Covers the ISSUE acceptance points: an injected always-failing primary
solver still completes every slot with a feasible plan, the winning
chain position lands in ``SolveStats.fallback_level`` and in the slot
trace's ``fallback``/``failure`` fields (JSONL round-trip included),
and ``fallback=False`` restores the old raise-on-failure behaviour.
"""

import numpy as np
import pytest

from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.obs import InMemoryCollector, SlotTrace, read_traces, write_traces
from repro.sim.slotted import run_simulation
from repro.solvers.base import SolverError
from repro.workload.traces import WorkloadTrace

#: Reliable fault injection: a 1-iteration simplex budget cannot finish
#: phase 1 on any non-trivial slot LP, so the primary stage always fails.
FAILING = dict(lp_method="simplex", solver_iteration_budget=1)


@pytest.fixture
def slot(small_topology):
    rng = np.random.default_rng(11)
    arrivals = rng.uniform(10.0, 60.0, size=(2, 2))
    prices = np.array([0.08, 0.06])
    return small_topology, arrivals, prices


@pytest.fixture
def setup(small_topology):
    rng = np.random.default_rng(4)
    trace = WorkloadTrace(rng.uniform(10.0, 60.0, size=(2, 2, 5)))
    market = MultiElectricityMarket([
        PriceTrace("a", rng.uniform(0.04, 0.12, size=5)),
        PriceTrace("b", rng.uniform(0.04, 0.12, size=5)),
    ])
    return small_topology, trace, market


class TestConfigValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="fallback_retries"):
            OptimizerConfig(fallback_retries=-1)

    def test_zero_iteration_budget_rejected(self):
        with pytest.raises(ValueError, match="solver_iteration_budget"):
            OptimizerConfig(solver_iteration_budget=0)

    def test_nonpositive_time_budget_rejected(self):
        with pytest.raises(ValueError, match="fallback_time_budget"):
            OptimizerConfig(fallback_time_budget=0.0)


class TestFallbackChain:
    def test_clean_solve_is_level_zero(self, slot):
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(topo)
        optimizer.plan_slot(arrivals, prices)
        stats = optimizer.last_stats
        assert stats.fallback_level == 0
        assert stats.failure == ""

    def test_failing_primary_rescued_by_alternate_backend(self, slot):
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(**FAILING)
        )
        plan = optimizer.plan_slot(arrivals, prices)
        stats = optimizer.last_stats
        assert stats.fallback_level == 1
        assert stats.fallback_stage == "lp:highs"
        assert "iteration" in stats.failure
        assert plan.meets_deadlines()

    def test_fallback_matches_direct_alternate_solve(self, slot):
        # The rescue stage runs the exact same solve the alternate
        # backend would have run directly, so objectives agree.
        topo, arrivals, prices = slot
        rescued = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(**FAILING)
        )
        rescued.plan_slot(arrivals, prices)
        direct = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(lp_method="highs")
        )
        direct.plan_slot(arrivals, prices)
        assert rescued.last_stats.objective == pytest.approx(
            direct.last_stats.objective, rel=1e-6
        )

    def test_fallback_disabled_raises(self, slot):
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(fallback=False, **FAILING)
        )
        with pytest.raises(SolverError):
            optimizer.plan_slot(arrivals, prices)

    def test_chain_order_reaches_greedy(self, slot, monkeypatch):
        # Exact LP backends all fail -> the greedy level search is next.
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(topo)

        def boom(*args, **kwargs):
            raise SolverError("injected LP failure")

        monkeypatch.setattr(optimizer, "_solve_lp", boom)
        plan = optimizer.plan_slot(arrivals, prices)
        stats = optimizer.last_stats
        assert stats.fallback_stage == "greedy"
        assert stats.fallback_level == 2
        assert stats.failure.count("injected LP failure") >= 2
        assert plan.meets_deadlines()

    def test_balanced_is_last_resort(self, slot, monkeypatch):
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(topo)

        def boom(*args, **kwargs):
            raise SolverError("injected solver failure")

        monkeypatch.setattr(optimizer, "_solve_lp", boom)
        monkeypatch.setattr(optimizer, "_solve_greedy", boom)
        plan = optimizer.plan_slot(arrivals, prices)
        stats = optimizer.last_stats
        assert stats.fallback_stage == "balanced"
        assert plan.meets_deadlines()
        assert np.isfinite(stats.objective)

    def test_multilevel_milp_rescued(self, multilevel_topology, monkeypatch):
        # Both MILP backends fail -> the chain lands on greedy, which
        # handles multi-level TUFs natively.
        rng = np.random.default_rng(6)
        arrivals = rng.uniform(500.0, 2000.0, size=(2, 1))
        prices = np.array([0.08, 0.06])
        optimizer = ProfitAwareOptimizer(multilevel_topology)

        def boom(*args, **kwargs):
            raise SolverError("injected MILP failure")

        monkeypatch.setattr(optimizer, "_solve_milp", boom)
        plan = optimizer.plan_slot(arrivals, prices)
        stats = optimizer.last_stats
        assert stats.fallback_stage == "greedy"
        assert plan.meets_deadlines()

    def test_each_stage_gets_configured_retries(self, slot, monkeypatch):
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(fallback_retries=2)
        )
        calls = []

        def boom(*args, **kwargs):
            calls.append(1)
            raise SolverError("injected")

        monkeypatch.setattr(optimizer, "_solve_lp", boom)
        optimizer.plan_slot(arrivals, prices)
        # Primary "lp" and rescue "lp:simplex" both route through
        # _solve_lp: 2 stages x (1 + 2 retries) attempts.
        assert len(calls) == 6

    def test_time_budget_skips_to_balanced(self, slot):
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(
            topo,
            config=OptimizerConfig(
                fallback_time_budget=1e-9, fallback_retries=0, **FAILING
            ),
        )
        plan = optimizer.plan_slot(arrivals, prices)
        stats = optimizer.last_stats
        assert stats.fallback_stage == "balanced"
        assert "skipped" in stats.failure
        assert plan.meets_deadlines()

    def test_slot_counter_survives_fallback(self, slot):
        # Cold retries drop solver state but must not rewind the trace
        # slot counter (reset_warm_state does both).
        topo, arrivals, prices = slot
        optimizer = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(**FAILING)
        )
        optimizer.plan_slot(arrivals, prices)
        optimizer.plan_slot(arrivals, prices)
        assert optimizer.slot_index == 2
        optimizer.reset_warm_state()
        assert optimizer.slot_index == 0


class TestFallbackRun:
    def test_always_failing_primary_completes_run(self, setup):
        # The ISSUE acceptance scenario: every slot's primary solve
        # fails, yet the run completes with feasible plans and per-slot
        # fallback levels in the traces.
        topo, trace, market = setup
        collector = InMemoryCollector()
        optimizer = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(**FAILING)
        )
        result = run_simulation(
            optimizer, trace, market, collector=collector
        )
        assert result.num_slots == trace.num_slots
        for record in result.records:
            assert record.plan.meets_deadlines()
        traces = collector.slot_traces
        assert len(traces) == trace.num_slots
        assert all(t.fallback >= 1 for t in traces)
        assert all(t.failure for t in traces)
        assert collector.counters["optimizer.fallbacks"] == trace.num_slots
        assert (collector.counters["controller.fallback_slots"]
                == trace.num_slots)
        assert collector.fallback_counts() == {1: trace.num_slots}

    def test_fallback_run_matches_alternate_backend_run(self, setup):
        topo, trace, market = setup
        rescued = run_simulation(
            ProfitAwareOptimizer(topo, config=OptimizerConfig(**FAILING)),
            trace, market,
        )
        direct = run_simulation(
            ProfitAwareOptimizer(
                topo, config=OptimizerConfig(lp_method="highs")
            ),
            trace, market,
        )
        assert np.allclose(rescued.net_profit_series,
                           direct.net_profit_series, rtol=1e-6)

    def test_traces_round_trip_with_fallback_fields(self, setup, tmp_path):
        topo, trace, market = setup
        collector = InMemoryCollector()
        run_simulation(
            ProfitAwareOptimizer(topo, config=OptimizerConfig(**FAILING)),
            trace, market, num_slots=3, collector=collector,
        )
        path = tmp_path / "traces.jsonl"
        write_traces(collector.slot_traces, path)
        again = read_traces(path)
        assert again == collector.slot_traces
        assert all(t.fallback == 1 for t in again)

    def test_old_trace_dicts_default_to_no_fallback(self):
        # Pre-fallback JSONL records lack the new fields; they must
        # still load, defaulting to "no fallback, no failure".
        d = dict(
            slot=0, method="lp", formulation="aggregated",
            warm_start="hit", objective=1.0, total_time=0.01,
            phase_times={}, iterations=3, nodes=0, lp_evaluations=0,
            num_variables=4, num_constraints=2, residuals={},
        )
        t = SlotTrace.from_dict(d)
        assert t.fallback == 0
        assert t.failure == ""

    def test_negative_fallback_rejected(self):
        with pytest.raises(ValueError, match="fallback"):
            SlotTrace(
                slot=0, method="lp", formulation="aggregated",
                warm_start="hit", objective=1.0, total_time=0.01,
                phase_times={}, iterations=0, nodes=0, lp_evaluations=0,
                num_variables=0, num_constraints=0, residuals={},
                fallback=-1,
            )


class TestFallbackCLI:
    def test_trace_reports_fallback_levels(self, capsys):
        from repro.cli import main
        assert main(["trace", "--scenario", "section6", "--slots", "3",
                     "--lp-method", "simplex",
                     "--iteration-budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "fallback levels:" in out
        assert "level1=3" in out

    def test_trace_rejects_bad_budget(self, capsys):
        from repro.cli import main
        assert main(["trace", "--iteration-budget", "0"]) == 2
        assert "--iteration-budget" in capsys.readouterr().err
