"""Property-based sparse==dense equivalence harness.

Randomized counterpart of ``test_sparse_solver.py``, in the style of
``test_property_warmstart.py``: across random topologies, slot
sequences, and synthetic LPs, the sparse path (CSR formulation, direct
dual simplex, decomposition, optimizer wiring) must reproduce the dense
path's objectives and plans to 1e-6 relative tolerance — warm and cold,
with and without presolve.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.config import OptimizerConfig
from repro.core.formulation import FixedLevelLPCache, SlotInputs
from repro.core.objective import evaluate_plan
from repro.core.optimizer import ProfitAwareOptimizer
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.solvers.base import LinearProgram
from repro.solvers.linprog import solve_lp
from repro.solvers.presolve import presolve
from repro.solvers.sparse import (
    class_blocks,
    solve_decomposed,
    solve_sparse_lp,
    validate_block_plan,
)

REL_TOL = 1e-6


def _close(a, b, tol=REL_TOL):
    return abs(a - b) <= tol * (1.0 + abs(b))


@st.composite
def boxable_lp_pairs(draw, max_vars=7, max_rows=5):
    """A direct-solvable LP plus a same-structure perturbation.

    One all-positive row guarantees the implied-bound boxing succeeds,
    mirroring the arrival-cap rows of the slot LPs.
    """
    n = draw(st.integers(2, max_vars))
    m = draw(st.integers(2, max_rows))
    a = draw(arrays(float, (m, n),
                    elements=st.floats(0.0, 3.0, allow_nan=False)))
    signs = draw(arrays(bool, (m, n)))
    a = np.where(signs, a, -a)
    a[0] = np.abs(a[0]) + 0.1  # boxing row

    def instance():
        c = draw(arrays(float, n,
                        elements=st.floats(-3.0, 3.0, allow_nan=False)))
        b = draw(arrays(float, m,
                        elements=st.floats(0.5, 4.0, allow_nan=False)))
        from scipy import sparse
        return LinearProgram(c=c, a_ub=sparse.csr_matrix(a), b_ub=b)

    return instance(), instance()


@st.composite
def random_topologies(draw):
    """Small random one-level topologies, feasible by construction.

    Server counts start at **zero** so degenerate fleets (a fully
    failed DC) flow through the whole sparse path; at least one DC
    always keeps a server.
    """
    K = draw(st.integers(1, 2))
    S = draw(st.integers(1, 2))
    L = draw(st.integers(1, 2))
    classes = tuple(
        RequestClass(
            f"c{k}",
            ConstantTUF(value=draw(st.floats(5.0, 20.0)),
                        deadline=draw(st.floats(0.01, 0.05))),
            transfer_unit_cost=draw(st.floats(1e-5, 1e-3)),
        )
        for k in range(K)
    )
    counts = [draw(st.integers(0, 3)) for _ in range(L)]
    if all(count == 0 for count in counts):
        counts[0] = 1
    datacenters = tuple(
        DataCenter(
            f"dc{l}",
            num_servers=counts[l],
            service_rates=np.array(
                [draw(st.floats(2000.0, 6000.0)) for _ in range(K)]
            ),
            energy_per_request=np.array(
                [draw(st.floats(1e-4, 5e-4)) for _ in range(K)]
            ),
        )
        for l in range(L)
    )
    distances = np.array(
        [[draw(st.floats(100.0, 2000.0)) for _ in range(L)]
         for _ in range(S)]
    )
    return CloudTopology(
        request_classes=classes,
        frontends=tuple(FrontEnd(f"fe{s}") for s in range(S)),
        datacenters=datacenters,
        distances=distances,
    )


@st.composite
def slot_sequences(draw, topology, num_slots=2):
    """Random (arrivals, prices) per slot; arrivals may hit zero."""
    K, S, L = (topology.num_classes, topology.num_frontends,
               topology.num_datacenters)
    slots = []
    for _ in range(num_slots):
        arrivals = np.array(
            [[draw(st.floats(0.0, 3000.0)) for _ in range(S)]
             for _ in range(K)]
        )
        prices = np.array([draw(st.floats(0.02, 0.15)) for _ in range(L)])
        slots.append((arrivals, prices))
    return slots


class TestSparseMatrixEquivalence:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_csr_cache_equals_dense_cache(self, data):
        topology = data.draw(random_topologies())
        slots = data.draw(slot_sequences(topology))
        for per_server in (False, True):
            dense_cache = FixedLevelLPCache(topology, per_server=per_server)
            sparse_cache = FixedLevelLPCache(
                topology, per_server=per_server, sparse=True
            )
            for arrivals, prices in slots:
                inputs = SlotInputs(topology=topology, arrivals=arrivals,
                                    prices=prices)
                dense_lp, _ = dense_cache.build(inputs)
                sparse_lp, _ = sparse_cache.build(inputs)
                assert np.array_equal(dense_lp.a_ub,
                                      sparse_lp.a_ub.toarray())
                assert np.array_equal(dense_lp.b_ub, sparse_lp.b_ub)
                assert np.array_equal(dense_lp.c, sparse_lp.c)
                assert np.array_equal(dense_lp.lower, sparse_lp.lower)
                assert np.array_equal(dense_lp.upper, sparse_lp.upper)


class TestSparseSolverEquivalence:
    @given(pair=boxable_lp_pairs())
    @settings(max_examples=50, deadline=None)
    def test_cold_and_warm_match_highs(self, pair, certify):
        first, second = pair
        cold1 = solve_sparse_lp(first)
        ref1 = solve_lp(first, "highs")
        assert cold1.ok == ref1.ok
        if not ref1.ok:
            return
        assert _close(cold1.objective, ref1.objective)
        assert first.is_feasible(cold1.x, tol=1e-6)
        certify(first, cold1)
        # Warm re-solve of the perturbation (new c AND new b).
        warm = solve_sparse_lp(second, state=cold1.state)
        ref2 = solve_lp(second, "highs")
        assert warm.ok == ref2.ok
        if ref2.ok:
            assert _close(warm.objective, ref2.objective)
            assert second.is_feasible(warm.x, tol=1e-6)
            certify(second, warm)

    @given(pair=boxable_lp_pairs())
    @settings(max_examples=40, deadline=None)
    def test_presolved_sparse_matches_highs(self, pair, certify):
        lp, _ = pair
        result = presolve(lp)
        ref = solve_lp(lp, "highs")
        if result.verdict is not None:
            assert not ref.ok
            return
        if result.reduced is None:
            return
        inner = solve_sparse_lp(result.reduced)
        assert inner.ok == ref.ok
        if ref.ok:
            restored = result.restore(inner.x)
            assert _close(
                inner.objective + result.objective_offset, ref.objective
            )
            assert lp.is_feasible(restored, tol=1e-6)
            certify(result.reduced, inner)


class TestDecompositionEquivalence:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_accepted_decomposition_is_optimal(self, data, certify):
        topology = data.draw(random_topologies())
        slots = data.draw(slot_sequences(topology))
        K, S, L = (topology.num_classes, topology.num_frontends,
                   topology.num_datacenters)
        blocks, coupling = class_blocks(K, S, L)
        cache = FixedLevelLPCache(topology, sparse=True)
        states = None
        for arrivals, prices in slots:
            inputs = SlotInputs(topology=topology, arrivals=arrivals,
                                prices=prices)
            lp, _ = cache.build(inputs)
            validate_block_plan(lp, blocks, coupling)
            result = solve_decomposed(lp, blocks, coupling, states=states)
            ref = solve_lp(lp, "highs").require_ok()
            if result is None:
                continue  # coupling bound; the caller joint-solves
            states = result.states
            assert _close(result.solution.objective, ref.objective)
            assert lp.is_feasible(result.solution.x, tol=1e-6)
            certify(lp, result.solution, coupling_rows=coupling)


class TestOptimizerSparseEquivalence:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_sparse_optimizer_equals_dense(self, data):
        topology = data.draw(random_topologies())
        slots = data.draw(slot_sequences(topology))
        dense = ProfitAwareOptimizer(
            topology, config=OptimizerConfig(level_method="lp")
        )
        sparse_opt = ProfitAwareOptimizer(
            topology, config=OptimizerConfig(level_method="lp", sparse=True)
        )
        for arrivals, prices in slots:
            dp = dense.plan_slot(arrivals, prices)
            sp = sparse_opt.plan_slot(arrivals, prices)
            assert sparse_opt.last_stats.fallback_level == 0
            assert _close(sparse_opt.last_stats.objective,
                          dense.last_stats.objective)
            # The LP can have alternative optima (near-idle fleets make
            # many share splits optimal), so plans are compared by the
            # realized profit they achieve, not elementwise.
            dense_profit = evaluate_plan(dp, arrivals, prices).net_profit
            sparse_profit = evaluate_plan(sp, arrivals, prices).net_profit
            assert _close(sparse_profit, dense_profit)
            assert np.all(sp.rates >= -1e-9)
            assert np.all(sp.shares >= -1e-9)
            assert np.all(sp.shares.sum(axis=0) <= 1.0 + 1e-6)
            assert np.all(
                sp.rates.sum(axis=2) <= arrivals * (1.0 + REL_TOL) + 1e-6
            )

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_sparse_warm_equals_sparse_cold(self, data):
        topology = data.draw(random_topologies())
        slots = data.draw(slot_sequences(topology, num_slots=3))
        warm = ProfitAwareOptimizer(topology, config=OptimizerConfig(
            level_method="lp", sparse=True, warm_start=True,
        ))
        cold = ProfitAwareOptimizer(topology, config=OptimizerConfig(
            level_method="lp", sparse=True, warm_start=False,
        ))
        for arrivals, prices in slots:
            warm.plan_slot(arrivals, prices)
            cold.plan_slot(arrivals, prices)
            assert _close(warm.last_stats.objective,
                          cold.last_stats.objective)
