"""Tests for ProfitAwareOptimizer (all solve paths and formulations)."""

import numpy as np
import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer, _explode_topology


def profits(topology, optimizer, arrivals, prices):
    plan = optimizer.plan_slot(arrivals, prices)
    return evaluate_plan(plan, arrivals, prices).net_profit


class TestConstruction:
    def test_rejects_unknown_method(self, small_topology):
        with pytest.raises(ValueError, match="level_method"):
            ProfitAwareOptimizer(small_topology, config=OptimizerConfig(level_method="magic"))

    def test_rejects_unknown_formulation(self, small_topology):
        with pytest.raises(ValueError, match="formulation"):
            ProfitAwareOptimizer(small_topology, config=OptimizerConfig(formulation="magic"))

    def test_lp_refused_for_multilevel(self, multilevel_topology):
        opt = ProfitAwareOptimizer(multilevel_topology, config=OptimizerConfig(level_method="lp"))
        with pytest.raises(ValueError, match="one-level"):
            opt.plan_slot(np.array([[100.0], [100.0]]), np.array([0.1, 0.1]))


class TestOneLevelPaths:
    def test_auto_selects_lp(self, small_topology):
        opt = ProfitAwareOptimizer(small_topology)
        opt.plan_slot(np.full((2, 2), 40.0), np.array([0.1, 0.1]))
        assert opt.last_stats.method == "lp"

    def test_plan_feasible_and_profitable(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        opt = ProfitAwareOptimizer(small_topology)
        plan = opt.plan_slot(arrivals, prices)
        assert plan.meets_deadlines()
        out = evaluate_plan(plan, arrivals, prices)
        assert out.net_profit > 0

    @pytest.mark.parametrize("formulation", ["aggregated", "per_server"])
    @pytest.mark.parametrize("lp_method", ["highs", "simplex"])
    def test_all_lp_paths_agree(self, small_topology, formulation, lp_method):
        arrivals = np.full((2, 2), 60.0)
        prices = np.array([0.05, 0.12])
        reference = profits(
            small_topology,
            ProfitAwareOptimizer(small_topology),
            arrivals, prices,
        )
        value = profits(
            small_topology,
            ProfitAwareOptimizer(small_topology, config=OptimizerConfig(formulation=formulation, lp_method=lp_method)),
            arrivals, prices,
        )
        assert value == pytest.approx(reference, rel=1e-6)

    def test_optimizer_at_least_matches_any_feasible_plan(self, small_topology):
        from repro.core.baselines import BalancedDispatcher
        arrivals = np.full((2, 2), 80.0)
        prices = np.array([0.04, 0.15])
        opt_profit = profits(
            small_topology, ProfitAwareOptimizer(small_topology),
            arrivals, prices,
        )
        balanced = BalancedDispatcher(small_topology)
        bal_plan = balanced.plan_slot(arrivals, prices)
        bal_profit = evaluate_plan(bal_plan, arrivals, prices).net_profit
        assert opt_profit >= bal_profit - 1e-6


class TestMultiLevelPaths:
    @pytest.fixture
    def setup(self, multilevel_topology):
        arrivals = np.array([[9000.0], [8000.0]])
        prices = np.array([0.05, 0.09])
        return multilevel_topology, arrivals, prices

    def test_auto_selects_milp(self, setup):
        topo, arrivals, prices = setup
        opt = ProfitAwareOptimizer(topo)
        opt.plan_slot(arrivals, prices)
        assert opt.last_stats.method == "milp"
        assert opt.last_stats.num_variables > 0

    def test_milp_bb_matches_highs(self, setup):
        topo, arrivals, prices = setup
        a = profits(topo, ProfitAwareOptimizer(topo, config=OptimizerConfig(milp_method="highs")),
                    arrivals, prices)
        b = profits(topo, ProfitAwareOptimizer(topo, config=OptimizerConfig(milp_method="bb")),
                    arrivals, prices)
        assert a == pytest.approx(b, rel=1e-6)

    def test_greedy_close_to_milp(self, setup):
        topo, arrivals, prices = setup
        exact = profits(topo, ProfitAwareOptimizer(topo), arrivals, prices)
        greedy = profits(topo, ProfitAwareOptimizer(topo, config=OptimizerConfig(level_method="greedy")),
                         arrivals, prices)
        assert greedy >= 0.9 * exact
        assert greedy <= exact + 1e-6

    def test_bigm_close_to_milp(self, setup):
        topo, arrivals, prices = setup
        exact = profits(topo, ProfitAwareOptimizer(topo), arrivals, prices)
        bigm = profits(topo, ProfitAwareOptimizer(topo, config=OptimizerConfig(level_method="bigm")),
                       arrivals, prices)
        assert bigm >= 0.8 * exact

    def test_per_server_milp_at_least_matches_aggregated(self, setup):
        # The aggregated MILP targets ONE TUF level per (class, DC); the
        # per-server layout may mix levels across a DC's servers, so it
        # can only do better (and usually only marginally so).
        topo, arrivals, prices = setup
        agg = profits(topo, ProfitAwareOptimizer(topo), arrivals, prices)
        per = profits(
            topo, ProfitAwareOptimizer(topo, config=OptimizerConfig(formulation="per_server")),
            arrivals, prices,
        )
        assert per >= agg - 1e-6
        assert per == pytest.approx(agg, rel=1e-2)

    def test_greedy_stats_expose_lp_evaluations(self, setup):
        topo, arrivals, prices = setup
        opt = ProfitAwareOptimizer(topo, config=OptimizerConfig(level_method="greedy"))
        opt.plan_slot(arrivals, prices)
        assert opt.last_stats.lp_evaluations >= 1


class TestConsolidation:
    def test_consolidated_plan_uses_fewer_servers(self, small_topology):
        arrivals = np.full((2, 2), 10.0)  # light load
        prices = np.array([0.05, 0.12])
        spread = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(consolidate=False))
        packed = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(consolidate=True))
        plan_spread = spread.plan_slot(arrivals, prices)
        plan_packed = packed.plan_slot(arrivals, prices)
        assert (plan_packed.powered_on_per_dc().sum()
                <= plan_spread.powered_on_per_dc().sum())
        # Consolidation must not change net profit (per-request energy).
        a = evaluate_plan(plan_spread, arrivals, prices).net_profit
        b = evaluate_plan(plan_packed, arrivals, prices).net_profit
        assert b == pytest.approx(a, rel=1e-6)


class TestExplodeTopology:
    def test_structure(self, small_topology):
        exploded = _explode_topology(small_topology)
        assert exploded.num_datacenters == small_topology.num_servers
        assert all(dc.num_servers == 1 for dc in exploded.datacenters)
        assert exploded.num_classes == small_topology.num_classes

    def test_distances_replicated(self, small_topology):
        exploded = _explode_topology(small_topology)
        # First 3 columns replicate dc1's distances, last 2 dc2's.
        assert np.allclose(exploded.distances[:, 0],
                           small_topology.distances[:, 0])
        assert np.allclose(exploded.distances[:, 4],
                           small_topology.distances[:, 1])


class TestSolveStats:
    def test_wall_time_recorded(self, small_topology):
        opt = ProfitAwareOptimizer(small_topology)
        opt.plan_slot(np.full((2, 2), 10.0), np.array([0.1, 0.1]))
        assert opt.last_stats.wall_time > 0
        assert opt.last_stats.formulation == "aggregated"
        assert opt.last_stats.objective > 0
