"""`repro check`: the umbrella gate over lint + arch + audit + certify."""

import json

import pytest

from repro.analysis.check import CHECK_NAMES, run_checks
from repro.cli import main

DIRTY = "def check(a):\n    return a == 0.0\n"


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "dirty.py").write_text(DIRTY)
    return pkg


class TestRunChecks:
    def test_static_checks_on_src_pass(self):
        code, report = run_checks(["src"], skip=("audit", "certify"))
        assert code == 0
        assert report["summary"]["ran"] == ["lint", "arch"]
        assert report["summary"]["skipped"] == ["audit", "certify"]
        assert report["checks"]["lint"]["exit_code"] == 0
        assert report["checks"]["arch"]["exit_code"] == 0
        assert report["checks"]["audit"] == {"skipped": True}

    def test_worst_of_exit_code(self, dirty_tree):
        # Lint fails on the fixture; arch is clean there: worst wins.
        code, report = run_checks(
            [str(dirty_tree)], skip=("audit", "certify"),
        )
        assert code == 1
        assert report["checks"]["lint"]["exit_code"] == 1
        assert report["summary"]["exit_code"] == 1

    def test_check_order_is_stable(self):
        assert CHECK_NAMES == ("lint", "arch", "audit", "certify")


class TestCheckCli:
    def test_text_output_and_exit(self, capsys):
        assert main([
            "check", "src", "--skip", "audit", "--skip", "certify",
        ]) == 0
        out = capsys.readouterr().out
        assert "lint" in out and "arch" in out
        assert "skipped" in out
        assert "check: exit 0" in out

    def test_json_report_shape(self, capsys):
        assert main([
            "check", "src", "--skip", "audit", "--skip", "certify",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["checks"]) == set(CHECK_NAMES)
        assert payload["summary"]["exit_code"] == 0
        arch = payload["checks"]["arch"]
        assert arch["findings"] == []
        assert arch["summary"]["errors"] == 0

    def test_out_file_written(self, tmp_path, capsys):
        out = tmp_path / "check-report.json"
        assert main([
            "check", "src", "--skip", "audit", "--skip", "certify",
            "--out", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["ran"] == ["lint", "arch"]
        capsys.readouterr()

    def test_findings_fail_the_gate(self, dirty_tree, capsys):
        assert main([
            "check", str(dirty_tree),
            "--skip", "audit", "--skip", "certify",
        ]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bad_certify_slots_exits_two(self, capsys):
        assert main(["check", "--certify-slots", "0"]) == 2
        assert "certify-slots" in capsys.readouterr().err

    def test_solver_checks_run(self, capsys):
        """Smoke the audit + certify legs on the default scenario."""
        assert main([
            "check", "src", "--skip", "lint", "--skip", "arch",
        ]) == 0
        out = capsys.readouterr().out
        assert "audit" in out and "certify" in out
