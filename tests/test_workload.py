"""Tests for the workload substrate (traces, synthesizers, predictors)."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    burst_overlay,
    diurnal_rates,
    mmpp_rates,
    poisson_counts,
)
from repro.workload.googletrace import google_like_trace
from repro.workload.prediction import EWMAPredictor, KalmanFilterPredictor
from repro.workload.traces import WorkloadTrace
from repro.workload.worldcup import worldcup_like_trace


class TestWorkloadTrace:
    @pytest.fixture
    def trace(self):
        rates = np.arange(2 * 3 * 4, dtype=float).reshape(2, 3, 4)
        return WorkloadTrace(rates, slot_duration=2.0)

    def test_shape_properties(self, trace):
        assert trace.num_classes == 2
        assert trace.num_frontends == 3
        assert trace.num_slots == 4

    def test_arrivals_at(self, trace):
        assert trace.arrivals_at(1).shape == (2, 3)
        assert trace.arrivals_at(5)[0, 0] == trace.arrivals_at(1)[0, 0]

    def test_total_requests(self, trace):
        assert trace.total_requests() == pytest.approx(trace.rates.sum() * 2.0)

    def test_from_single_type_shifts(self):
        series = np.array([[1.0, 2.0, 3.0, 4.0]])
        trace = WorkloadTrace.from_single_type(series, num_classes=2,
                                               shift_slots=1)
        assert trace.class_series(0, 0).tolist() == [1.0, 2.0, 3.0, 4.0]
        assert trace.class_series(1, 0).tolist() == [4.0, 1.0, 2.0, 3.0]

    def test_duplicated_as_class(self):
        base = WorkloadTrace(np.ones((1, 1, 3)))
        dup = base.duplicated_as_class(shift_slots=1)
        assert dup.num_classes == 2

    def test_scaled(self, trace):
        assert trace.scaled(2.0).rates[1, 1, 1] == trace.rates[1, 1, 1] * 2

    def test_window_wraps(self, trace):
        win = trace.window(3, 5)
        assert win.num_slots == 2
        assert win.rates[0, 0, 1] == trace.rates[0, 0, 0]

    def test_select_classes(self, trace):
        sub = trace.select_classes([1])
        assert sub.num_classes == 1
        assert np.array_equal(sub.rates[0], trace.rates[1])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkloadTrace(-np.ones((1, 1, 1)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match=r"\(K, S, T\)"):
            WorkloadTrace(np.ones((2, 2)))


class TestArrivalPatterns:
    def test_diurnal_peak_location(self):
        rates = diurnal_rates(24, base=10.0, amplitude=100.0, peak_slot=15.0)
        assert np.argmax(rates) == 15
        assert rates.min() >= 10.0

    def test_diurnal_sharpness_narrows_peak(self):
        soft = diurnal_rates(24, 10.0, 100.0, 12.0, sharpness=1.0)
        sharp = diurnal_rates(24, 10.0, 100.0, 12.0, sharpness=4.0)
        # Sharper curve is lower away from the peak, equal at the peak.
        assert sharp[12] == pytest.approx(soft[12])
        assert sharp[6] < soft[6]

    def test_burst_overlay_adds_at_center(self):
        base = np.full(10, 5.0)
        bursty = burst_overlay(base, burst_slot=4, magnitude=20.0, width=1.0)
        assert bursty[4] == pytest.approx(25.0)
        assert bursty[0] < 6.0

    def test_mmpp_rates_values_from_levels(self):
        rates = mmpp_rates(
            50, level_rates=[1.0, 10.0],
            transition=np.array([[0.5, 0.5], [0.5, 0.5]]), seed=0,
        )
        assert set(np.unique(rates)) <= {1.0, 10.0}

    def test_mmpp_rejects_bad_transition(self):
        with pytest.raises(ValueError, match="stochastic"):
            mmpp_rates(5, [1.0, 2.0], np.array([[0.5, 0.2], [0.5, 0.5]]))

    def test_poisson_counts_mean(self):
        counts = poisson_counts(np.full(5000, 10.0), slot_duration=2.0, seed=0)
        assert counts.mean() == pytest.approx(20.0, rel=0.05)


class TestWorldCupTrace:
    def test_shape(self):
        trace = worldcup_like_trace()
        assert trace.num_classes == 3
        assert trace.num_frontends == 4
        assert trace.num_slots == 24

    def test_deterministic_given_seed(self):
        a = worldcup_like_trace(seed=5).rates
        b = worldcup_like_trace(seed=5).rates
        assert np.array_equal(a, b)

    def test_classes_are_shifted_copies(self):
        trace = worldcup_like_trace(shift_slots=2, noise=0.0)
        base = trace.class_series(0, 0)
        shifted = trace.class_series(1, 0)
        assert np.allclose(np.roll(base, 2), shifted)

    def test_diurnal_swing(self):
        trace = worldcup_like_trace(noise=0.0)
        day = trace.class_series(0, 0)
        assert day[12:22].mean() > 2 * day[0:5].mean()

    def test_frontends_differ(self):
        trace = worldcup_like_trace(noise=0.0)
        assert not np.allclose(trace.class_series(0, 0), trace.class_series(0, 1))


class TestGoogleTrace:
    def test_shape(self):
        trace = google_like_trace()
        assert trace.num_classes == 2
        assert trace.num_frontends == 1
        assert trace.num_slots == 7

    def test_second_type_is_shifted_duplicate(self):
        trace = google_like_trace(shift_slots=2)
        assert np.allclose(
            np.roll(trace.class_series(0, 0), 2), trace.class_series(1, 0)
        )

    def test_mean_rate_approx(self):
        trace = google_like_trace(num_slots=500, mean_rate=1000.0, seed=3)
        assert trace.class_series(0, 0).mean() == pytest.approx(1000.0, rel=0.2)

    def test_rejects_negative_variability(self):
        with pytest.raises(ValueError):
            google_like_trace(variability=-0.1)


class TestEWMAPredictor:
    def test_initial_prediction(self):
        assert EWMAPredictor(initial=5.0).predict() == 5.0

    def test_first_observation_resets_level(self):
        p = EWMAPredictor(alpha=0.5, initial=100.0)
        p.observe(10.0)
        assert p.predict() == 10.0

    def test_smoothing(self):
        p = EWMAPredictor(alpha=0.5)
        p.observe(10.0)
        p.observe(20.0)
        assert p.predict() == pytest.approx(15.0)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=1.5)


class TestKalmanPredictor:
    def test_converges_to_constant_signal(self):
        p = KalmanFilterPredictor(process_var=0.01, observation_var=1.0)
        for _ in range(200):
            p.observe(50.0)
        assert p.predict() == pytest.approx(50.0, abs=0.5)

    def test_tracks_level_shift(self):
        p = KalmanFilterPredictor(process_var=1.0, observation_var=1.0)
        for _ in range(50):
            p.observe(10.0)
        for _ in range(50):
            p.observe(100.0)
        assert p.predict() == pytest.approx(100.0, rel=0.05)

    def test_prediction_nonnegative(self):
        p = KalmanFilterPredictor(initial_estimate=0.0)
        p.observe(0.0)
        assert p.predict() >= 0.0

    def test_predict_series_is_one_step_ahead(self):
        p = KalmanFilterPredictor(initial_estimate=1.0, initial_var=0.0)
        forecasts = p.predict_series(np.array([5.0, 5.0, 5.0]))
        # First forecast made before any observation: the prior estimate.
        assert forecasts[0] == pytest.approx(1.0)
        assert forecasts[2] > forecasts[0]

    def test_variance_shrinks_with_observations(self):
        p = KalmanFilterPredictor(initial_var=1e6)
        before = p.variance
        p.observe(10.0)
        assert p.variance < before

    def test_beats_ewma_on_noisy_random_walk(self):
        rng = np.random.default_rng(0)
        level = 100.0
        truth, observed = [], []
        for _ in range(400):
            level += rng.normal(0, 1.0)
            truth.append(level)
            observed.append(max(0.0, level + rng.normal(0, 8.0)))
        kalman = KalmanFilterPredictor(process_var=1.0, observation_var=64.0)
        ewma = EWMAPredictor(alpha=0.5)
        k_err = e_err = 0.0
        for z, x in zip(observed, truth):
            k_err += (kalman.predict() - x) ** 2
            e_err += (ewma.predict() - x) ** 2
            kalman.observe(z)
            ewma.observe(z)
        assert k_err < e_err
