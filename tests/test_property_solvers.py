"""Property-based tests for the solver substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.solvers.base import LinearProgram, MixedIntegerProgram
from repro.solvers.branch_bound import solve_milp
from repro.solvers.linprog import solve_lp

finite_floats = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


@st.composite
def bounded_lps(draw, max_vars=7, max_rows=5):
    n = draw(st.integers(2, max_vars))
    m = draw(st.integers(1, max_rows))
    c = draw(arrays(float, n, elements=finite_floats))
    a = draw(arrays(float, (m, n), elements=finite_floats))
    b = draw(arrays(float, m,
                    elements=st.floats(0.5, 4.0, allow_nan=False)))
    upper = draw(st.floats(1.0, 5.0))
    return LinearProgram(c=c, a_ub=a, b_ub=b, upper=np.full(n, upper))


class TestSimplexProperties:
    @given(lp=bounded_lps())
    @settings(max_examples=50, deadline=None)
    def test_simplex_agrees_with_highs(self, lp):
        ours = solve_lp(lp, "simplex")
        ref = solve_lp(lp, "highs")
        # Bounded feasible region (0 is feasible since b >= 0.5 > 0):
        # both must find an optimum.
        assert ref.ok and ours.ok
        assert abs(ours.objective - ref.objective) <= 1e-6 * (
            1.0 + abs(ref.objective)
        )

    @given(lp=bounded_lps())
    @settings(max_examples=50, deadline=None)
    def test_simplex_solution_feasible(self, lp, certify):
        sol = solve_lp(lp, "simplex")
        assert sol.ok
        assert lp.is_feasible(sol.x, tol=1e-6)
        certify(lp, sol)

    @given(lp=bounded_lps())
    @settings(max_examples=30, deadline=None)
    def test_objective_matches_solution_vector(self, lp):
        sol = solve_lp(lp, "simplex")
        assert sol.ok
        assert abs(float(lp.c @ sol.x) - sol.objective) < 1e-9


class TestBranchBoundProperties:
    @given(lp=bounded_lps(max_vars=5, max_rows=3), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_bb_agrees_with_highs_milp(self, lp, data):
        mask = data.draw(
            st.lists(st.booleans(), min_size=lp.num_variables,
                     max_size=lp.num_variables)
        )
        assume(any(mask))
        mip = MixedIntegerProgram(lp, integer_mask=mask)
        ours = solve_milp(mip, "bb")
        ref = solve_milp(mip, "highs")
        # x = 0 is integral-feasible, so both must succeed.
        assert ours.ok and ref.ok
        assert abs(ours.objective - ref.objective) <= 1e-5 * (
            1.0 + abs(ref.objective)
        )

    @given(lp=bounded_lps(max_vars=5, max_rows=3))
    @settings(max_examples=30, deadline=None)
    def test_bb_integrality_and_feasibility(self, lp, certify):
        mask = [True] * lp.num_variables
        mip = MixedIntegerProgram(lp, integer_mask=mask)
        sol = solve_milp(mip, "bb")
        assert sol.ok
        assert np.allclose(sol.x, np.round(sol.x), atol=1e-6)
        assert lp.is_feasible(sol.x, tol=1e-6)
        certify(mip, sol)

    @given(lp=bounded_lps(max_vars=5, max_rows=3))
    @settings(max_examples=20, deadline=None)
    def test_milp_no_better_than_relaxation(self, lp):
        mask = [True] * lp.num_variables
        mip = MixedIntegerProgram(lp, integer_mask=mask)
        milp_sol = solve_milp(mip, "bb")
        lp_sol = solve_lp(lp, "highs")
        assert milp_sol.ok and lp_sol.ok
        # Same tolerance as the bb-vs-highs comparison above: objective
        # coefficients below the backends' dual-feasibility tolerance
        # (~1e-7) leave both solvers free to park on any optimal-within-
        # tolerance vertex, so an absolute 1e-8 bound is unattainable.
        assert milp_sol.objective >= lp_sol.objective - 1e-5 * (
            1.0 + abs(lp_sol.objective)
        )
