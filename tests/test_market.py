"""Tests for the electricity-market substrate."""

import numpy as np
import pytest

from repro.market.market import MultiElectricityMarket
from repro.market.prices import (
    PriceTrace,
    atlanta_profile,
    houston_profile,
    mountain_view_profile,
    paper_locations,
    price_matrix,
    synthetic_profile,
)


class TestPriceTrace:
    def test_length_and_at(self):
        trace = PriceTrace("x", np.array([0.1, 0.2, 0.3]))
        assert len(trace) == 3
        assert trace.at(1) == 0.2

    def test_at_wraps_around(self):
        trace = PriceTrace("x", np.array([0.1, 0.2]))
        assert trace.at(2) == 0.1
        assert trace.at(5) == 0.2

    def test_window(self):
        trace = PriceTrace("x", np.arange(1.0, 25.0))
        win = trace.window(22, 26)
        assert win.prices.tolist() == [23.0, 24.0, 1.0, 2.0]

    def test_rejects_negative_prices(self):
        with pytest.raises(ValueError):
            PriceTrace("x", np.array([0.1, -0.2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PriceTrace("x", np.array([]))

    def test_scaled(self):
        trace = PriceTrace("x", np.array([0.1, 0.2]))
        assert trace.scaled(2.0).prices.tolist() == [0.2, 0.4]

    def test_mean(self):
        trace = PriceTrace("x", np.array([0.1, 0.3]))
        assert trace.mean() == pytest.approx(0.2)


class TestProfiles:
    @pytest.mark.parametrize("builder", [
        houston_profile, mountain_view_profile, atlanta_profile
    ])
    def test_profiles_are_24h_positive(self, builder):
        trace = builder()
        assert len(trace) == 24
        assert np.all(trace.prices > 0)

    def test_profiles_are_deterministic(self):
        a = houston_profile().prices
        b = houston_profile().prices
        assert np.array_equal(a, b)

    def test_profiles_differ_across_locations(self):
        assert not np.array_equal(houston_profile().prices,
                                  atlanta_profile().prices)

    def test_cheapest_location_changes_during_day(self):
        # The multi-electricity-market premise: no location is cheapest
        # around the clock.
        matrix = price_matrix(list(paper_locations().values()))
        cheapest = np.argmin(matrix, axis=0)
        assert len(set(cheapest.tolist())) >= 2

    def test_afternoon_peak(self):
        prices = houston_profile().prices
        assert prices[14:19].mean() > prices[0:6].mean()

    def test_synthetic_profile_parameters(self):
        trace = synthetic_profile("custom", base=0.05, amplitude=0.0)
        # With zero amplitude the curve is base + jitter only.
        assert np.all(np.abs(trace.prices - 0.05) < 0.05)

    def test_price_matrix_rejects_mixed_lengths(self):
        with pytest.raises(ValueError, match="lengths"):
            price_matrix([
                PriceTrace("a", np.array([0.1])),
                PriceTrace("b", np.array([0.1, 0.2])),
            ])


class TestMultiElectricityMarket:
    @pytest.fixture
    def market(self):
        return MultiElectricityMarket([
            PriceTrace("a", np.array([0.3, 0.1, 0.2])),
            PriceTrace("b", np.array([0.1, 0.2, 0.2])),
        ])

    def test_shape_properties(self, market):
        assert market.num_locations == 2
        assert market.num_slots == 3

    def test_prices_at(self, market):
        assert market.prices_at(0).tolist() == [0.3, 0.1]

    def test_prices_at_wraps(self, market):
        assert market.prices_at(3).tolist() == [0.3, 0.1]

    def test_cheapest_location(self, market):
        assert market.cheapest_location(0) == 1
        assert market.cheapest_location(1) == 0

    def test_price_order_is_balanced_fill_order(self, market):
        assert market.price_order(0).tolist() == [1, 0]
        assert market.price_order(1).tolist() == [0, 1]

    def test_spread(self, market):
        assert market.spread_at(0) == pytest.approx(0.2)
        assert market.spread_at(2) == pytest.approx(0.0)

    def test_window(self, market):
        win = market.window(1, 3)
        assert win.num_slots == 2
        assert win.prices_at(0).tolist() == [0.1, 0.2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiElectricityMarket([])

    def test_as_matrix_is_copy(self, market):
        m = market.as_matrix()
        m[:] = 0
        assert market.prices_at(0)[0] == 0.3
