"""Property-based tests for core invariants: queueing, plans, optimizer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import BalancedDispatcher
from repro.core.objective import evaluate_plan
from repro.core.optimizer import ProfitAwareOptimizer
from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.queueing.mm1 import mm1_max_rate, mm1_mean_delay, mm1_required_capacity

rate_floats = st.floats(1.0, 500.0, allow_nan=False)


class TestQueueingProperties:
    @given(mu=rate_floats, frac=st.floats(0.01, 0.99))
    def test_delay_positive_and_above_service_time(self, mu, frac):
        lam = frac * mu
        delay = mm1_mean_delay(mu, lam)
        assert delay >= 1.0 / mu - 1e-12

    @given(mu=rate_floats, f1=st.floats(0.01, 0.49), f2=st.floats(0.5, 0.99))
    def test_delay_monotone_in_load(self, mu, f1, f2):
        assert mm1_mean_delay(mu, f1 * mu) <= mm1_mean_delay(mu, f2 * mu)

    @given(lam=rate_floats, d=st.floats(0.001, 10.0))
    def test_capacity_rate_roundtrip(self, lam, d):
        mu = mm1_required_capacity(lam, d)
        back = mm1_max_rate(mu, d)
        assert abs(back - lam) < 1e-6 * (1.0 + lam)

    @given(mu=rate_floats, d=st.floats(0.001, 10.0))
    def test_max_rate_meets_deadline(self, mu, d):
        lam = mm1_max_rate(mu, d)
        if lam > 0:
            assert mm1_mean_delay(mu, lam * 0.999999) <= d / 0.99


@st.composite
def topologies_and_arrivals(draw):
    """Random small, feasible one-level topologies with arrivals."""
    K = draw(st.integers(1, 3))
    S = draw(st.integers(1, 3))
    L = draw(st.integers(1, 3))
    classes = []
    for k in range(K):
        value = draw(st.floats(1.0, 50.0))
        deadline = draw(st.floats(0.05, 0.5))
        classes.append(RequestClass(
            f"r{k}", ConstantTUF(value, deadline),
            transfer_unit_cost=draw(st.floats(0.0, 1e-4)),
        ))
    datacenters = []
    for l in range(L):
        rates = np.array([draw(st.floats(100.0, 400.0)) for _ in range(K)])
        energy = np.array([draw(st.floats(1e-5, 1e-3)) for _ in range(K)])
        datacenters.append(DataCenter(
            f"d{l}", num_servers=draw(st.integers(1, 4)),
            service_rates=rates, energy_per_request=energy,
        ))
    frontends = [FrontEnd(f"f{s}") for s in range(S)]
    distances = np.array(
        [[draw(st.floats(10.0, 3000.0)) for _ in range(L)] for _ in range(S)]
    )
    topo = CloudTopology(tuple(classes), tuple(frontends), tuple(datacenters),
                         distances)
    arrivals = np.array(
        [[draw(st.floats(0.0, 300.0)) for _ in range(S)] for _ in range(K)]
    )
    prices = np.array([draw(st.floats(0.01, 0.2)) for _ in range(L)])
    return topo, arrivals, prices


class TestOptimizerProperties:
    @given(setup=topologies_and_arrivals())
    @settings(max_examples=25, deadline=None)
    def test_plan_always_feasible(self, setup):
        topo, arrivals, prices = setup
        plan = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
        assert plan.meets_deadlines()
        assert np.all(plan.rates.sum(axis=2) <= arrivals + 1e-6)
        assert np.all(plan.shares.sum(axis=0) <= 1.0 + 1e-9)
        assert np.all(plan.rates >= 0)

    @given(setup=topologies_and_arrivals())
    @settings(max_examples=25, deadline=None)
    def test_optimizer_profit_nonnegative(self, setup):
        # Dropping everything is always available, so the optimum earns
        # at least (close to) zero.
        topo, arrivals, prices = setup
        plan = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
        out = evaluate_plan(plan, arrivals, prices)
        assert out.net_profit >= -1e-6

    @given(setup=topologies_and_arrivals())
    @settings(max_examples=20, deadline=None)
    def test_optimizer_dominates_balanced(self, setup):
        topo, arrivals, prices = setup
        opt_plan = ProfitAwareOptimizer(topo).plan_slot(arrivals, prices)
        bal_plan = BalancedDispatcher(topo).plan_slot(arrivals, prices)
        opt = evaluate_plan(opt_plan, arrivals, prices).net_profit
        bal = evaluate_plan(bal_plan, arrivals, prices).net_profit
        assert opt >= bal - max(1e-6, 1e-9 * abs(bal))

    @given(setup=topologies_and_arrivals(), scale=st.floats(1.1, 3.0))
    @settings(max_examples=15, deadline=None)
    def test_profit_monotone_in_offered_load(self, setup, scale):
        # More offered work can never hurt the optimum (serving the
        # original subset remains feasible).
        topo, arrivals, prices = setup
        base = evaluate_plan(
            ProfitAwareOptimizer(topo).plan_slot(arrivals, prices),
            arrivals, prices,
        ).net_profit
        more_arrivals = arrivals * scale
        more = evaluate_plan(
            ProfitAwareOptimizer(topo).plan_slot(more_arrivals, prices),
            more_arrivals, prices,
        ).net_profit
        assert more >= base - max(1e-6, 1e-7 * abs(base))

    @given(setup=topologies_and_arrivals())
    @settings(max_examples=15, deadline=None)
    def test_balanced_plan_feasible(self, setup):
        topo, arrivals, prices = setup
        plan = BalancedDispatcher(topo).plan_slot(arrivals, prices)
        assert plan.meets_deadlines()
        assert np.all(plan.rates.sum(axis=2) <= arrivals + 1e-6)
