"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF, StepDownwardTUF


@pytest.fixture
def single_class_topology() -> CloudTopology:
    """1 class, 1 front-end, 1 DC of 4 servers — the smallest sane system."""
    rc = RequestClass(
        "search", ConstantTUF(value=10.0, deadline=0.02), transfer_unit_cost=0.003
    )
    dc = DataCenter(
        "dc1", num_servers=4,
        service_rates=np.array([150.0]),
        energy_per_request=np.array([3e-4]),
    )
    return CloudTopology(
        request_classes=(rc,),
        frontends=(FrontEnd("fe1"),),
        datacenters=(dc,),
        distances=np.array([[500.0]]),
    )


@pytest.fixture
def small_topology() -> CloudTopology:
    """2 classes, 2 front-ends, 2 DCs — small but fully featured."""
    classes = (
        RequestClass("r1", ConstantTUF(5.0, 0.05), transfer_unit_cost=0.001),
        RequestClass("r2", ConstantTUF(9.0, 0.08), transfer_unit_cost=0.002),
    )
    datacenters = (
        DataCenter("dc1", num_servers=3,
                   service_rates=np.array([120.0, 100.0]),
                   energy_per_request=np.array([2e-4, 3e-4])),
        DataCenter("dc2", num_servers=2,
                   service_rates=np.array([140.0, 90.0]),
                   energy_per_request=np.array([1e-4, 4e-4])),
    )
    frontends = (FrontEnd("fe1"), FrontEnd("fe2"))
    distances = np.array([[300.0, 1200.0], [900.0, 400.0]])
    return CloudTopology(classes, frontends, datacenters, distances)


@pytest.fixture
def multilevel_topology() -> CloudTopology:
    """2 classes with two-level TUFs, 1 front-end, 2 DCs (section-VII-like)."""
    classes = (
        RequestClass("r1", StepDownwardTUF([10.0, 4.0], [0.002, 0.006]),
                     transfer_unit_cost=1e-5),
        RequestClass("r2", StepDownwardTUF([20.0, 8.0], [0.003, 0.008]),
                     transfer_unit_cost=2e-5),
    )
    datacenters = (
        DataCenter("dc1", num_servers=3,
                   service_rates=np.array([5000.0, 4000.0]),
                   energy_per_request=np.array([0.2, 0.3])),
        DataCenter("dc2", num_servers=3,
                   service_rates=np.array([4500.0, 5000.0]),
                   energy_per_request=np.array([0.3, 0.25])),
    )
    return CloudTopology(
        classes, (FrontEnd("fe1"),), datacenters,
        distances=np.array([[1000.0, 2000.0]]),
    )


@pytest.fixture
def formulation_audit():
    """The formulation auditor as a fixture: audit a SlotInputs.

    Tier-1 tests use this to assert a scenario's slot problem is
    statically sound (``formulation_audit(inputs).clean``) without each
    test importing the analysis package.
    """
    from repro.analysis.model import audit_slot

    return audit_slot


@pytest.fixture(scope="session")
def certify():
    """The optimality certifier as a fixture: verify one solve.

    ``certify(problem, solution, **kwargs)`` recomputes every CT0xx
    certificate (primal/dual feasibility, complementary slackness,
    duality gap, integrality) from the problem data and fails the test
    with the rendered report on any error-severity finding.  Returns
    the :class:`~repro.analysis.certify.CertifyReport` so tests can
    additionally assert on coverage or warnings.  Session-scoped (the
    helper is stateless) so hypothesis tests may use it freely.
    """
    from repro.analysis.certify import certify_solution

    def _certify(problem, solution, **kwargs):
        report = certify_solution(problem, solution, **kwargs)
        assert not report.errors, "\n" + report.render_text()
        return report

    return _certify
