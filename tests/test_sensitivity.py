"""Tests for shadow-price (dual) analysis of the slot LP."""

import numpy as np
import pytest

from repro.core.formulation import SlotInputs
from repro.core.objective import evaluate_plan
from repro.core.optimizer import ProfitAwareOptimizer
from repro.core.sensitivity import slot_sensitivity


def _profit(topology, arrivals, prices):
    plan = ProfitAwareOptimizer(topology).plan_slot(arrivals, prices)
    return evaluate_plan(plan, arrivals, prices).net_profit


@pytest.fixture
def saturated(small_topology):
    # Heavy load: capacity constraints bind, duals are informative.
    arrivals = np.full((2, 2), 300.0)
    prices = np.array([0.05, 0.12])
    return small_topology, arrivals, prices


@pytest.fixture
def light(small_topology):
    arrivals = np.full((2, 2), 10.0)
    prices = np.array([0.05, 0.12])
    return small_topology, arrivals, prices


class TestSlotSensitivity:
    def test_shapes_and_profit(self, saturated):
        topo, arrivals, prices = saturated
        sens = slot_sensitivity(SlotInputs(topo, arrivals, prices))
        assert sens.share_mass_value.shape == (2,)
        assert sens.server_value.shape == (2,)
        assert sens.demand_value.shape == (2, 2)
        assert sens.delay_duals.shape == (2, 2)
        assert sens.net_profit == pytest.approx(
            _profit(topo, arrivals, prices), rel=1e-6
        )

    def test_saturated_capacity_is_valuable(self, saturated):
        topo, arrivals, prices = saturated
        sens = slot_sensitivity(SlotInputs(topo, arrivals, prices))
        assert sens.server_value.max() > 0

    def test_light_load_capacity_worthless(self, light):
        topo, arrivals, prices = light
        sens = slot_sensitivity(SlotInputs(topo, arrivals, prices))
        # Spare capacity everywhere: extra servers add nothing.
        assert np.allclose(sens.server_value, 0.0, atol=1e-6)
        # But every offered request is profitable: demand has value.
        assert np.all(sens.demand_value > 0)

    def test_demand_value_matches_finite_difference(self, saturated):
        topo, arrivals, prices = saturated
        sens = slot_sensitivity(SlotInputs(topo, arrivals, prices))
        eps = 1e-3
        base = _profit(topo, arrivals, prices)
        for (k, s) in [(0, 0), (1, 1)]:
            bumped = arrivals.copy()
            bumped[k, s] += eps
            fd = (_profit(topo, bumped, prices) - base) / eps
            assert sens.demand_value[k, s] == pytest.approx(fd, abs=1e-2)

    def test_server_value_concavity_sandwich(self, saturated):
        # Profit is concave piecewise-linear in the server count, so
        # dual(M) >= profit(M+1)-profit(M) and <= profit(M)-profit(M-1).
        topo, arrivals, prices = saturated
        sens = slot_sensitivity(SlotInputs(topo, arrivals, prices))
        for l in range(topo.num_datacenters):
            m = topo.datacenters[l].num_servers
            def with_servers(count):
                dcs = list(topo.datacenters)
                dcs[l] = dcs[l].with_servers(count)
                return topo.with_datacenters(dcs)
            up_gain = (_profit(with_servers(m + 1), arrivals, prices)
                       - _profit(topo, arrivals, prices))
            down_loss = (_profit(topo, arrivals, prices)
                         - _profit(with_servers(m - 1), arrivals, prices))
            assert sens.server_value[l] >= up_gain - 1e-3
            if m > 1:
                assert sens.server_value[l] <= down_loss + 1e-3

    def test_most_valuable_expansion(self, saturated):
        topo, arrivals, prices = saturated
        sens = slot_sensitivity(SlotInputs(topo, arrivals, prices))
        l_star = sens.most_valuable_expansion()
        assert sens.server_value[l_star] == sens.server_value.max()

    def test_demand_value_zero_for_unprofitable_class(self, small_topology):
        # Absurd price: serving always loses money, demand worth nothing.
        arrivals = np.full((2, 2), 50.0)
        prices = np.array([1e6, 1e6])
        sens = slot_sensitivity(SlotInputs(small_topology, arrivals, prices))
        assert np.allclose(sens.demand_value, 0.0, atol=1e-9)
        assert sens.net_profit == pytest.approx(0.0, abs=1e-6)
