"""Unit tests for the sparse solver core (boxing, dual simplex,
decomposition) and its optimizer wiring — including the degenerate-slot
edges: zero-arrival frontends, zero-server data centers, single-server
data centers."""

import time

import numpy as np
import pytest
from scipy import sparse

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.config import OptimizerConfig
from repro.core.formulation import FixedLevelLPCache, SlotInputs, fixed_level_lp
from repro.core.optimizer import ProfitAwareOptimizer
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.obs.collectors import InMemoryCollector
from repro.sim.failures import degraded_topology
from repro.sim.parallel import parallel_map
from repro.solvers.base import LinearProgram, SolveStatus
from repro.solvers.linprog import solve_lp
from repro.solvers.sparse import (
    class_blocks,
    implied_upper_bounds,
    solve_decomposed,
    solve_sparse_lp,
    validate_block_plan,
)

REL_TOL = 1e-6


def _random_boxable_lp(rng, n=8, m=5):
    """An LP the direct dual simplex covers: nonnegative rows box it."""
    a = rng.uniform(0.0, 2.0, (m, n)) * (rng.random((m, n)) < 0.6)
    a[0] = rng.uniform(0.5, 2.0, n)  # one dense nonnegative row boxes all
    b = rng.uniform(1.0, 5.0, m)
    c = rng.uniform(-2.0, 2.0, n)
    return LinearProgram(c=c, a_ub=sparse.csr_matrix(a), b_ub=b)


def _small_topology(servers=(3, 2), mu=3000.0):
    classes = (
        RequestClass("c0", ConstantTUF(8.0, 0.05), transfer_unit_cost=1e-4),
        RequestClass("c1", ConstantTUF(6.0, 0.08), transfer_unit_cost=2e-4),
    )
    datacenters = tuple(
        DataCenter(
            f"dc{l}", num_servers=count,
            service_rates=np.array([mu, mu * 1.2]),
            energy_per_request=np.array([2e-4, 3e-4]),
        )
        for l, count in enumerate(servers)
    )
    frontends = (FrontEnd("fe0"), FrontEnd("fe1"))
    distances = np.array([[200.0, 800.0], [500.0, 300.0]])
    return CloudTopology(
        request_classes=classes, frontends=frontends,
        datacenters=datacenters, distances=distances,
    )


def _slot_lp(topology, arrivals, prices):
    inputs = SlotInputs(topology, arrivals=arrivals, prices=prices)
    return fixed_level_lp(inputs, sparse=True)


class TestImpliedUpperBounds:
    def test_boxes_every_variable(self):
        lp = _random_boxable_lp(np.random.default_rng(0))
        upper = implied_upper_bounds(lp)
        assert upper is not None
        assert np.all(np.isfinite(upper))
        assert np.all(upper >= lp.lower)

    def test_bounds_do_not_cut_optimum(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            lp = _random_boxable_lp(rng)
            upper = implied_upper_bounds(lp)
            boxed = LinearProgram(
                c=lp.c, a_ub=lp.a_ub, b_ub=lp.b_ub,
                lower=lp.lower, upper=upper,
            )
            ref = solve_lp(lp, "highs").require_ok()
            tight = solve_lp(boxed, "highs").require_ok()
            assert tight.objective == pytest.approx(ref.objective, rel=1e-8)

    def test_unboxable_negative_cost_returns_none(self):
        # x1 has c < 0 and appears only in a mixed-sign row: no implied
        # bound, so the direct solver must decline.
        a = sparse.csr_matrix(np.array([[1.0, -1.0]]))
        lp = LinearProgram(c=np.array([0.5, -1.0]), a_ub=a,
                           b_ub=np.array([1.0]))
        assert implied_upper_bounds(lp) is None

    def test_slot_lp_is_boxable(self):
        topo = _small_topology()
        lp, _ = _slot_lp(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        upper = implied_upper_bounds(lp)
        assert upper is not None and np.all(np.isfinite(upper))


class TestSparseDualSimplex:
    def test_cold_matches_highs(self):
        rng = np.random.default_rng(2)
        for _ in range(30):
            lp = _random_boxable_lp(rng)
            got = solve_sparse_lp(lp)
            ref = solve_lp(lp, "highs").require_ok()
            assert got.ok
            assert got.objective == pytest.approx(ref.objective, rel=REL_TOL,
                                                  abs=1e-9)
            assert lp.is_feasible(got.x, tol=1e-6)

    def test_rhs_only_warm_resolve(self):
        rng = np.random.default_rng(3)
        lp = _random_boxable_lp(rng)
        first = solve_sparse_lp(lp)
        assert first.ok and first.state is not None
        # Same objective vector, perturbed rhs: the saved basis is still
        # dual feasible and the re-solve starts from it directly.
        nudged = LinearProgram(
            c=lp.c, a_ub=lp.a_ub,
            b_ub=lp.b_ub * rng.uniform(0.9, 1.1, lp.b_ub.size),
        )
        warm = solve_sparse_lp(nudged, state=first.state)
        ref = solve_lp(nudged, "highs").require_ok()
        assert warm.ok and warm.warm_start_used
        assert warm.objective == pytest.approx(ref.objective, rel=REL_TOL,
                                               abs=1e-9)

    def test_changed_objective_warm_resolve(self):
        rng = np.random.default_rng(4)
        lp = _random_boxable_lp(rng)
        first = solve_sparse_lp(lp)
        changed = LinearProgram(
            c=lp.c + rng.uniform(-0.5, 0.5, lp.c.size),
            a_ub=lp.a_ub, b_ub=lp.b_ub,
        )
        warm = solve_sparse_lp(changed, state=first.state)
        ref = solve_lp(changed, "highs").require_ok()
        assert warm.ok
        assert warm.objective == pytest.approx(ref.objective, rel=REL_TOL,
                                               abs=1e-9)

    def test_warm_saves_pivots_on_slot_sequence(self):
        topo = _small_topology()
        rng = np.random.default_rng(5)
        prices = rng.uniform(0.03, 0.12, 2)
        state = None
        cold_iters = warm_iters = 0
        for t in range(6):
            arrivals = rng.uniform(100.0, 800.0, (2, 2))
            lp, _ = _slot_lp(topo, arrivals, prices)
            cold = solve_sparse_lp(lp)
            warm = solve_sparse_lp(lp, state=state)
            state = warm.state or cold.state
            cold_iters += cold.iterations
            if t:
                warm_iters += warm.iterations
        assert warm_iters < cold_iters

    def test_iteration_limit_reported(self):
        rng = np.random.default_rng(6)
        lp = _random_boxable_lp(rng)
        capped = solve_sparse_lp(lp, max_iterations=1)
        if capped.status is SolveStatus.ITERATION_LIMIT:
            assert not capped.ok
        else:  # one pivot genuinely sufficed
            assert capped.ok

    def test_equality_rows_fall_back_to_highs(self):
        collector = InMemoryCollector()
        lp = LinearProgram(
            c=np.array([1.0, 2.0]),
            a_eq=sparse.csr_matrix(np.array([[1.0, 1.0]])),
            b_eq=np.array([1.0]),
            upper=np.array([2.0, 2.0]),
        )
        got = solve_sparse_lp(lp, collector=collector)
        assert got.ok
        assert got.objective == pytest.approx(1.0, rel=1e-8)
        assert "sparse.cold_solves" not in collector.counters

    def test_tall_programs_route_to_highs(self, monkeypatch):
        import repro.solvers.sparse as sparse_mod

        monkeypatch.setattr(sparse_mod, "SPARSE_DIRECT_ROW_LIMIT", 2)
        collector = InMemoryCollector()
        lp = _random_boxable_lp(np.random.default_rng(7))
        got = solve_sparse_lp(lp, collector=collector)
        ref = solve_lp(lp, "highs").require_ok()
        assert got.ok
        assert got.objective == pytest.approx(ref.objective, rel=1e-8)
        assert "sparse.cold_solves" not in collector.counters

    def test_infeasible_lp_detected(self):
        # x <= 1 but x >= 2 by bounds: infeasible however it is solved.
        lp = LinearProgram(
            c=np.array([1.0]),
            a_ub=sparse.csr_matrix(np.array([[1.0]])),
            b_ub=np.array([1.0]),
            lower=np.array([2.0]), upper=np.array([3.0]),
        )
        assert not solve_sparse_lp(lp).ok


class TestDecomposition:
    def _lp_and_blocks(self, topo, arrivals, prices):
        lp, _ = _slot_lp(topo, arrivals, prices)
        K, S, L = (topo.num_classes, topo.num_frontends,
                   topo.num_datacenters)
        blocks, coupling = class_blocks(K, S, L)
        validate_block_plan(lp, blocks, coupling)
        return lp, blocks, coupling

    def test_accepts_and_matches_joint_solve(self):
        topo = _small_topology()
        lp, blocks, coupling = self._lp_and_blocks(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        result = solve_decomposed(lp, blocks, coupling)
        assert result is not None
        ref = solve_lp(lp, "highs").require_ok()
        assert result.solution.objective == pytest.approx(
            ref.objective, rel=REL_TOL, abs=1e-9
        )
        assert lp.is_feasible(result.solution.x, tol=1e-6)
        assert result.num_blocks == topo.num_classes
        assert len(result.states) == topo.num_classes

    def test_rejects_when_coupling_binds(self):
        # A starved fleet (low mu, one server per DC, heavy arrivals)
        # makes the share-budget rows bind; each block alone would grab
        # the whole budget, so the optimistic recombination must reject.
        topo = _small_topology(servers=(1, 1), mu=400.0)
        collector = InMemoryCollector()
        lp, blocks, coupling = self._lp_and_blocks(
            topo,
            arrivals=np.array([[400.0, 400.0], [400.0, 400.0]]),
            prices=np.array([0.0001, 0.0001]),
        )
        result = solve_decomposed(lp, blocks, coupling,
                                  collector=collector)
        assert result is None
        assert collector.counters.get("sparse.coupling_rejects", 0) == 1

    def test_worker_pool_matches_serial(self):
        topo = _small_topology()
        lp, blocks, coupling = self._lp_and_blocks(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        serial = solve_decomposed(lp, blocks, coupling)
        pooled = solve_decomposed(lp, blocks, coupling, workers=2)
        assert serial is not None and pooled is not None
        assert pooled.solution.objective == pytest.approx(
            serial.solution.objective, rel=1e-9
        )

    def test_validate_rejects_overlapping_blocks(self):
        topo = _small_topology()
        lp, blocks, coupling = self._lp_and_blocks(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        bad = [blocks[0], blocks[0]]
        with pytest.raises(ValueError, match="overlap"):
            validate_block_plan(lp, bad, coupling)

    def test_validate_rejects_partial_cover(self):
        topo = _small_topology()
        lp, blocks, coupling = self._lp_and_blocks(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        with pytest.raises(ValueError, match="partition"):
            validate_block_plan(lp, blocks[:1], coupling)


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(lambda v: v * v, [3, 1, 2]) == [9, 1, 4]

    def test_preserves_order_pooled(self):
        assert parallel_map(_square, list(range(8)), workers=2) == [
            v * v for v in range(8)
        ]

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            parallel_map(_square, [1], workers=0)

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_explode, [1])

    def test_unlabeled_exception_type_unchanged(self):
        # Without labels the original exception class must survive —
        # callers may be catching it specifically.
        from repro.sim.parallel import WorkerError

        with pytest.raises(RuntimeError) as excinfo:
            parallel_map(_explode, [1, 2])
        assert not isinstance(excinfo.value, WorkerError)

    def test_labels_attribute_failures_serial(self):
        from repro.sim.parallel import WorkerError

        with pytest.raises(WorkerError, match=r"item\[1\]: RuntimeError"):
            parallel_map(
                _explode_on_two, [1, 2], labels=["item[0]", "item[1]"]
            )

    def test_labels_attribute_failures_pooled(self):
        from repro.sim.parallel import WorkerError

        items = list(range(4))
        with pytest.raises(WorkerError, match=r"item\[2\]: RuntimeError"):
            parallel_map(
                _explode_on_two, items, workers=2,
                labels=[f"item[{i}]" for i in items],
            )

    def test_labels_chain_original_cause_serial(self):
        from repro.sim.parallel import WorkerError

        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_explode, [1], labels=["only"])
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            parallel_map(_square, [1, 2], labels=["just-one"])

    def test_successful_labeled_map_returns_results(self):
        assert parallel_map(
            _square, [1, 2, 3], labels=["a", "b", "c"]
        ) == [1, 4, 9]


class TestBlockFailureAttribution:
    """A crash inside one decomposed block must name its class block."""

    def _decomposable(self):
        topo = _small_topology()
        lp, _ = _slot_lp(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        K, S, L = (topo.num_classes, topo.num_frontends,
                   topo.num_datacenters)
        blocks, coupling = class_blocks(K, S, L)
        return lp, blocks, coupling

    def test_serial_block_crash_carries_class_label(self, monkeypatch):
        from repro.sim.parallel import WorkerError
        from repro.solvers import sparse as sparse_mod

        def boom(task):
            raise FloatingPointError("synthetic block crash")

        monkeypatch.setattr(sparse_mod, "_solve_block_task", boom)
        with pytest.raises(
            WorkerError,
            match=r"block\[class=0\]: FloatingPointError",
        ):
            lp, blocks, coupling = self._decomposable()
            solve_decomposed(lp, blocks, coupling)

    def test_pooled_block_crash_carries_class_label(self, monkeypatch):
        # Force the pooled branch with workers=2; the label must
        # survive the process boundary (no __cause__ there, so the
        # class name is folded into the message).
        from repro.sim.parallel import WorkerError
        from repro.solvers import sparse as sparse_mod

        lp, blocks, coupling = self._decomposable()
        monkeypatch.setattr(
            sparse_mod, "_solve_block_task", _explode_block
        )
        with pytest.raises(WorkerError, match=r"block\[class="):
            solve_decomposed(lp, blocks, coupling, workers=2)


def _square(v):
    return v * v


def _explode(v):
    raise RuntimeError("boom")


def _explode_on_two(v):
    if v == 2:
        raise RuntimeError("boom at two")
    return v


def _explode_block(task):
    raise FloatingPointError("synthetic block crash")


class TestOptimizerSparsePath:
    def _configs(self, **kw):
        dense = OptimizerConfig(level_method="lp", **kw)
        return dense, dense.replace(sparse=True)

    def _compare(self, topo, slots, **kw):
        dense_cfg, sparse_cfg = self._configs(**kw)
        dense = ProfitAwareOptimizer(topo, config=dense_cfg)
        sparse_opt = ProfitAwareOptimizer(topo, config=sparse_cfg)
        for arrivals, prices in slots:
            dp = dense.plan_slot(arrivals, prices)
            sp = sparse_opt.plan_slot(arrivals, prices)
            assert sparse_opt.last_stats.fallback_level == 0
            assert sparse_opt.last_stats.objective == pytest.approx(
                dense.last_stats.objective, rel=REL_TOL, abs=1e-9
            )
            assert np.allclose(dp.rates, sp.rates, rtol=REL_TOL, atol=1e-6)
        return sparse_opt

    def test_matches_dense_and_traces_stages(self):
        topo = _small_topology()
        rng = np.random.default_rng(8)
        slots = [
            (rng.uniform(100, 800, (2, 2)), rng.uniform(0.03, 0.1, 2))
            for _ in range(4)
        ]
        collector = InMemoryCollector()
        opt = self._compare(topo, slots, collector=collector)
        trace = collector.slot_traces[-1]
        assert {"build", "decompose", "solve", "expand"} <= set(
            trace.phase_times
        )
        assert opt.last_stats.active_servers > 0
        assert opt.last_stats.warm_outcome == "hit"

    def test_per_server_collapse_stage(self):
        topo = _small_topology()
        collector = InMemoryCollector()
        opt = ProfitAwareOptimizer(topo, config=OptimizerConfig(
            level_method="lp", formulation="per_server", sparse=True,
            collector=collector,
        ))
        opt.plan_slot(np.array([[500.0, 300.0], [200.0, 400.0]]),
                      np.array([0.05, 0.08]))
        assert "collapse" in collector.slot_traces[-1].phase_times

    def test_zero_arrival_frontend(self):
        topo = _small_topology()
        slots = [(np.array([[0.0, 600.0], [0.0, 300.0]]),
                  np.array([0.05, 0.08]))]
        self._compare(topo, slots)

    def test_zero_arrival_class(self):
        topo = _small_topology()
        slots = [(np.array([[0.0, 0.0], [300.0, 300.0]]),
                  np.array([0.05, 0.08]))]
        self._compare(topo, slots)

    def test_all_zero_arrivals(self):
        topo = _small_topology()
        slots = [(np.zeros((2, 2)), np.array([0.05, 0.08]))]
        self._compare(topo, slots)

    def test_zero_server_datacenter(self):
        # A fully failed DC (as degraded_topology now produces) must
        # survive collapse and decomposition: its load pins to zero.
        topo = degraded_topology(_small_topology(), [3, 0])
        slots = [(np.array([[400.0, 200.0], [150.0, 250.0]]),
                  np.array([0.05, 0.08]))]
        opt = self._compare(topo, slots)
        plan = opt.plan_slot(*slots[0])
        offsets = topo.server_offsets()
        assert np.all(plan.rates[:, :, offsets[1]:] == 0.0)

    def test_single_server_datacenters(self):
        topo = _small_topology(servers=(1, 1))
        slots = [(np.array([[300.0, 200.0], [150.0, 250.0]]),
                  np.array([0.05, 0.08]))]
        self._compare(topo, slots)

    def test_reset_warm_state_clears_sparse_states(self):
        topo = _small_topology()
        opt = ProfitAwareOptimizer(topo, config=OptimizerConfig(
            level_method="lp", sparse=True,
        ))
        arrivals = np.array([[400.0, 200.0], [150.0, 250.0]])
        prices = np.array([0.05, 0.08])
        opt.plan_slot(arrivals, prices)
        assert (opt._sparse_block_states is not None
                or opt._sparse_joint_state is not None)
        opt.reset_warm_state()
        assert opt._sparse_block_states is None
        assert opt._sparse_joint_state is None
        opt.plan_slot(arrivals, prices)
        assert opt.last_stats.warm_outcome == "cold"


class TestSparseFormulationScale:
    def test_fleet_scale_csr_build_and_audit_wall_time(self):
        # Satellite guard: the MD030-MD036 diagnostics must stay
        # structure-driven (nonzeros only).  At fleet_100x scale the old
        # dense row/column iteration took minutes; the CSR version runs
        # the whole pass in well under the budget below.
        topo = _small_topology().with_servers_per_datacenter(900)
        inputs = SlotInputs(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        start = time.perf_counter()
        lp, _ = fixed_level_lp(inputs, per_server=True, sparse=True)
        from repro.analysis.model.findings import ModelFinding
        from repro.analysis.model.matrix import analyze_program, matrix_details

        def make(code, severity, component, message, **data):
            return ModelFinding(code=code, severity=severity,
                                component=component, message=message,
                                data=data)

        findings = list(analyze_program(lp, "lp", make))
        details = matrix_details(lp)
        elapsed = time.perf_counter() - start
        assert lp.a_ub.shape[0] > 3600  # genuinely fleet-sized
        assert details["columns"] == lp.num_variables
        assert not [f for f in findings if f.severity == "error"]
        assert elapsed < 5.0

    def test_sparse_cache_matches_dense_cache(self):
        topo = _small_topology()
        inputs = SlotInputs(
            topo,
            arrivals=np.array([[500.0, 300.0], [200.0, 400.0]]),
            prices=np.array([0.05, 0.08]),
        )
        for per_server in (False, True):
            dense_lp, _ = FixedLevelLPCache(
                topo, per_server=per_server
            ).build(inputs)
            sparse_lp, _ = FixedLevelLPCache(
                topo, per_server=per_server, sparse=True
            ).build(inputs)
            assert sparse.issparse(sparse_lp.a_ub)
            assert np.array_equal(dense_lp.a_ub,
                                  sparse_lp.a_ub.toarray())
            assert np.array_equal(dense_lp.b_ub, sparse_lp.b_ub)
            assert np.array_equal(dense_lp.c, sparse_lp.c)
            assert np.array_equal(dense_lp.upper, sparse_lp.upper)
