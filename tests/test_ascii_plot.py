"""Tests for terminal plotting helpers."""

import numpy as np
import pytest

from repro.utils.ascii_plot import line_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes_hit_first_and_last_block(self):
        s = sparkline([0.0, 10.0])
        assert s[0] == "▁" and s[-1] == "█"

    def test_length_preserved(self):
        values = np.random.default_rng(0).random(37)
        assert len(sparkline(values)) == 37

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            sparkline([1.0, float("nan")])


class TestLineChart:
    def test_basic_structure(self):
        chart = line_chart({"a": [0, 1, 2, 3]}, height=5, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 5 + 2  # title + rows + axis + legend
        assert "o=a" in lines[-1]

    def test_min_max_labels(self):
        chart = line_chart({"a": [2.0, 8.0]}, height=4)
        assert "8" in chart.splitlines()[0]
        assert "2" in chart.splitlines()[3]

    def test_two_series_use_distinct_markers(self):
        chart = line_chart({"up": [0, 1, 2], "down": [2, 1, 0]}, height=5)
        assert "o=up" in chart and "x=down" in chart
        assert "o" in chart and "x" in chart

    def test_overlap_marker(self):
        chart = line_chart({"a": [1, 1], "b": [1, 1]}, height=3)
        assert "∎" in chart

    def test_resampling_to_width(self):
        chart = line_chart({"a": list(range(100))}, height=4, width=20)
        data_rows = [ln for ln in chart.splitlines() if "|" in ln]
        assert all(len(ln.split("|")[1]) == 20 for ln in data_rows)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            line_chart({})
        with pytest.raises(ValueError, match="lengths"):
            line_chart({"a": [1, 2], "b": [1, 2, 3]})
        with pytest.raises(ValueError, match="empty"):
            line_chart({"a": []})
        with pytest.raises(ValueError, match="height"):
            line_chart({"a": [1, 2]}, height=1)
