"""Tests for the paper's big-M constraint transformation (Eqs. 11-26)."""

import numpy as np
import pytest

from repro.core.bigm import (
    bigm_constraint_series,
    check_series_selects_level,
    lagrange_utility,
    solve_slot_bigm,
)
from repro.core.formulation import SlotInputs
from repro.core.objective import evaluate_plan
from repro.core.tuf import StepDownwardTUF


class TestBigMSeries:
    """Verify the paper's equivalence claim: with U restricted to the
    discrete level set, the constraint series is satisfied by exactly the
    TUF level achieved at the given delay."""

    @pytest.mark.parametrize("num_levels", [2, 3, 4, 5])
    def test_exactly_one_feasible_level_interior(self, num_levels):
        values = list(np.linspace(10.0, 2.0, num_levels))
        deadlines = list(np.linspace(0.1, 0.1 * num_levels, num_levels))
        tuf = StepDownwardTUF(values, deadlines)
        # Sample strictly inside each band.
        probes = [0.05] + [
            (deadlines[q] + deadlines[q + 1]) / 2.0
            for q in range(num_levels - 1)
        ]
        for delay in probes:
            expected, feasible = check_series_selects_level(tuf, delay)
            assert feasible == [expected], (delay, expected, feasible)

    def test_two_level_paper_case(self):
        # Matches the paper's Eqs. 11-13 walkthrough.
        tuf = StepDownwardTUF([10.0, 4.0], [0.5, 1.0])
        assert check_series_selects_level(tuf, 0.3) == (0, [0])
        assert check_series_selects_level(tuf, 0.7) == (1, [1])

    def test_three_level_paper_case(self):
        # Matches the paper's Eqs. 18-24 walkthrough (n = 3).
        tuf = StepDownwardTUF([9.0, 6.0, 3.0], [1.0, 2.0, 3.0])
        assert check_series_selects_level(tuf, 0.5) == (0, [0])
        assert check_series_selects_level(tuf, 1.5) == (1, [1])
        assert check_series_selects_level(tuf, 2.5) == (2, [2])

    def test_one_level_reduces_to_deadline(self):
        series = bigm_constraint_series([10.0], [0.5])
        assert len(series) == 1
        assert series[0](0.4, 10.0) <= 0
        assert series[0](0.6, 10.0) > 0

    def test_series_count(self):
        # n levels -> 2*(n-1) constraints (one pair per boundary).
        for n in (2, 3, 4, 6):
            values = list(np.linspace(10.0, 1.0, n))
            deadlines = list(np.linspace(1.0, float(n), n))
            series = bigm_constraint_series(values, deadlines)
            assert len(series) == 2 * (n - 1)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            bigm_constraint_series([1.0, 2.0], [0.5])


class TestLagrangeUtility:
    def test_exact_at_integer_selectors(self):
        values = [10.0, 6.0, 2.0]
        for x, expected in zip((1, 2, 3), values):
            assert lagrange_utility(float(x), values) == pytest.approx(expected)

    def test_single_level(self):
        assert lagrange_utility(1.0, [7.0]) == 7.0

    def test_interpolates_between_levels(self):
        values = [10.0, 6.0]
        assert lagrange_utility(1.5, values) == pytest.approx(8.0)

    def test_five_levels_exact(self):
        values = [50.0, 40.0, 25.0, 10.0, 1.0]
        for x in range(1, 6):
            assert lagrange_utility(float(x), values) == \
                pytest.approx(values[x - 1])


class TestSolveSlotBigM:
    def test_plan_is_feasible(self, multilevel_topology):
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        plan = solve_slot_bigm(inputs, seed=1)
        assert plan.meets_deadlines()
        assert np.all(plan.rates.sum(axis=2) <= inputs.arrivals + 1e-6)

    def test_near_optimal_vs_milp(self, multilevel_topology):
        from repro.core.formulation import multilevel_milp
        from repro.solvers.branch_bound import solve_milp
        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        bigm_plan = solve_slot_bigm(inputs, seed=1)
        bigm_profit = evaluate_plan(
            bigm_plan, inputs.arrivals, inputs.prices
        ).net_profit
        mip, decoder = multilevel_milp(inputs)
        milp_plan = decoder(solve_milp(mip, "highs").require_ok().x)
        milp_profit = evaluate_plan(
            milp_plan, inputs.arrivals, inputs.prices
        ).net_profit
        # The big-M path is a heuristic: allow a modest optimality gap.
        assert bigm_profit >= 0.8 * milp_profit

    def test_tightened_default_matches_shared_constant(
        self, multilevel_topology
    ):
        # The default is now the data-driven per-class big
        # (recommended_big); the historical shared DEFAULT_BIG must stay
        # available as an explicit override and produce the same
        # objective — the constant only conditions the NLP, it does not
        # change which levels are feasible.
        from repro.core.bigm import DEFAULT_BIG

        inputs = SlotInputs(
            multilevel_topology,
            arrivals=np.array([[9000.0], [8000.0]]),
            prices=np.array([0.05, 0.09]),
        )
        new_plan = solve_slot_bigm(inputs, seed=1)
        old_plan = solve_slot_bigm(inputs, big=DEFAULT_BIG, seed=1)
        new_profit = evaluate_plan(
            new_plan, inputs.arrivals, inputs.prices
        ).net_profit
        old_profit = evaluate_plan(
            old_plan, inputs.arrivals, inputs.prices
        ).net_profit
        assert new_profit == pytest.approx(old_profit, rel=1e-6)

    def test_series_equivalence_under_tightened_big(self):
        # The level-selection equivalence claim holds for the tightened
        # data-driven constant exactly as for the loose default.
        from repro.analysis.model.bigm import recommended_big

        tuf = StepDownwardTUF([9.0, 6.0, 3.0], [1.0, 2.0, 3.0])
        tight = recommended_big(tuf.values, tuf.deadlines, 1e-9)
        assert 0.0 < tight < 1e4
        for delay, expected in ((0.5, 0), (1.5, 1), (2.5, 2)):
            got, feasible = check_series_selects_level(
                tuf, delay, big=tight
            )
            assert (got, feasible) == (expected, [expected])
