"""End-to-end tests with three-level TUFs (paper §IV-3).

The §VII experiments use two levels; the paper's constraint machinery is
derived for n levels (Eqs. 16-26).  These tests push three-level TUFs
through every solve path.
"""

import itertools

import numpy as np
import pytest

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.formulation import SlotInputs, fixed_level_lp, multilevel_milp
from repro.core.objective import evaluate_plan
from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.core.request import RequestClass
from repro.core.tuf import StepDownwardTUF
from repro.solvers.branch_bound import solve_milp
from repro.solvers.linprog import solve_lp


@pytest.fixture
def three_level_topology() -> CloudTopology:
    classes = (
        RequestClass(
            "gold",
            StepDownwardTUF([30.0, 18.0, 6.0], [0.001, 0.003, 0.008]),
            transfer_unit_cost=1e-5,
        ),
        RequestClass(
            "bronze",
            StepDownwardTUF([8.0, 5.0, 2.0], [0.002, 0.005, 0.010]),
            transfer_unit_cost=1e-5,
        ),
    )
    datacenters = (
        DataCenter("dc1", 2, np.array([8000.0, 6000.0]),
                   np.array([0.2, 0.3])),
        DataCenter("dc2", 2, np.array([7000.0, 8000.0]),
                   np.array([0.3, 0.2])),
    )
    return CloudTopology(
        classes, (FrontEnd("fe1"),), datacenters,
        distances=np.array([[800.0, 1500.0]]),
    )


@pytest.fixture
def slot(three_level_topology):
    return SlotInputs(
        three_level_topology,
        arrivals=np.array([[14000.0], [12000.0]]),
        prices=np.array([0.06, 0.10]),
    )


class TestThreeLevelMILP:
    def test_milp_matches_exhaustive_enumeration(self, slot):
        best = np.inf
        for combo in itertools.product([0, 1, 2], repeat=4):
            levels = np.asarray(combo).reshape(2, 2)
            sol = solve_lp(fixed_level_lp(slot, levels=levels)[0])
            if sol.ok:
                best = min(best, sol.objective)
        mip, _ = multilevel_milp(slot)
        milp_obj = solve_milp(mip, "highs").require_ok().objective
        assert milp_obj == pytest.approx(best, rel=1e-7)

    def test_bb_agrees_with_highs(self, slot):
        mip, _ = multilevel_milp(slot)
        a = solve_milp(mip, "highs").require_ok().objective
        b = solve_milp(mip, "bb").require_ok().objective
        assert a == pytest.approx(b, rel=1e-7)

    def test_plan_feasible_and_levels_realized(self, slot,
                                               three_level_topology):
        mip, decoder = multilevel_milp(slot)
        plan = decoder(solve_milp(mip, "highs").require_ok().x)
        assert plan.meets_deadlines()
        out = evaluate_plan(plan, slot.arrivals, slot.prices)
        # Realized profit can only match or beat the plan (delays inside
        # a better band earn more).
        milp_obj = solve_milp(mip, "highs").require_ok().objective
        assert out.net_profit >= -milp_obj - 1e-6


class TestThreeLevelSolverPaths:
    @pytest.mark.parametrize("kwargs", [
        dict(level_method="milp", milp_method="highs"),
        dict(level_method="milp", milp_method="bb"),
        dict(level_method="greedy"),
    ])
    def test_paths_agree_or_bound(self, three_level_topology, slot, kwargs):
        exact = ProfitAwareOptimizer(three_level_topology)
        plan_exact = exact.plan_slot(slot.arrivals, slot.prices)
        profit_exact = evaluate_plan(
            plan_exact, slot.arrivals, slot.prices
        ).net_profit
        opt = ProfitAwareOptimizer(three_level_topology,
                                   config=OptimizerConfig(**kwargs))
        plan = opt.plan_slot(slot.arrivals, slot.prices)
        profit = evaluate_plan(plan, slot.arrivals, slot.prices).net_profit
        if kwargs.get("level_method") == "milp":
            assert profit == pytest.approx(profit_exact, rel=1e-6)
        else:
            assert profit >= 0.9 * profit_exact

    def test_bigm_path_runs(self, three_level_topology, slot):
        opt = ProfitAwareOptimizer(three_level_topology, config=OptimizerConfig(level_method="bigm"))
        plan = opt.plan_slot(slot.arrivals, slot.prices)
        exact = evaluate_plan(
            ProfitAwareOptimizer(three_level_topology).plan_slot(
                slot.arrivals, slot.prices),
            slot.arrivals, slot.prices,
        ).net_profit
        profit = evaluate_plan(plan, slot.arrivals, slot.prices).net_profit
        assert profit >= 0.7 * exact

    def test_overload_picks_levels_selectively(self, three_level_topology):
        # Under extreme load the MILP trades gold's tight level for
        # volume somewhere; everything stays feasible.
        arrivals = np.array([[60000.0], [50000.0]])
        prices = np.array([0.06, 0.10])
        opt = ProfitAwareOptimizer(three_level_topology)
        plan = opt.plan_slot(arrivals, prices)
        assert plan.meets_deadlines()
        out = evaluate_plan(plan, arrivals, prices)
        assert out.net_profit > 0
        assert out.completion_fractions.min() < 1.0
