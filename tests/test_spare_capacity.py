"""Tests for spare-CPU distribution on dispatch plans."""

import numpy as np
import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.core.plan import DispatchPlan


class TestWithSpareCapacityDistributed:
    def test_fills_active_servers(self, small_topology):
        rates = np.zeros((2, 2, 5))
        rates[0, 0, 0] = 10.0
        rates[1, 0, 0] = 5.0
        shares = np.zeros((2, 5))
        shares[:, 0] = [0.3, 0.2]
        plan = DispatchPlan(small_topology, rates, shares)
        boosted = plan.with_spare_capacity_distributed()
        assert boosted.shares[:, 0].sum() == pytest.approx(1.0)
        # Proportions preserved.
        assert boosted.shares[0, 0] / boosted.shares[1, 0] == pytest.approx(1.5)

    def test_releases_unloaded_class_shares(self, small_topology):
        rates = np.zeros((2, 2, 5))
        rates[0, 0, 0] = 10.0  # only class 0 loaded on server 0
        shares = np.zeros((2, 5))
        shares[:, 0] = [0.4, 0.4]
        plan = DispatchPlan(small_topology, rates, shares)
        boosted = plan.with_spare_capacity_distributed()
        assert boosted.shares[1, 0] == 0.0
        assert boosted.shares[0, 0] == pytest.approx(1.0)

    def test_delays_strictly_improve(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        raw = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(use_spare_capacity=False)).plan_slot(arrivals, prices)
        boosted = raw.with_spare_capacity_distributed()
        d_raw, d_boost = raw.delays(), boosted.delays()
        mask = ~np.isnan(d_raw)
        assert np.all(d_boost[mask] <= d_raw[mask] + 1e-12)
        assert np.any(d_boost[mask] < d_raw[mask])

    def test_profit_never_decreases(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        raw = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(use_spare_capacity=False)).plan_slot(arrivals, prices)
        base = evaluate_plan(raw, arrivals, prices).net_profit
        boosted = evaluate_plan(
            raw.with_spare_capacity_distributed(), arrivals, prices
        ).net_profit
        assert boosted >= base - 1e-9

    def test_rates_unchanged(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        plan = ProfitAwareOptimizer(small_topology, config=OptimizerConfig(use_spare_capacity=False)).plan_slot(arrivals, prices)
        boosted = plan.with_spare_capacity_distributed()
        assert np.array_equal(boosted.rates, plan.rates)

    def test_idempotent(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        plan = ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices)
        again = plan.with_spare_capacity_distributed()
        assert np.allclose(again.shares, plan.shares)

    def test_empty_plan_unchanged(self, small_topology):
        plan = DispatchPlan.empty(small_topology)
        boosted = plan.with_spare_capacity_distributed()
        assert np.array_equal(boosted.shares, plan.shares)

    def test_optimizer_flag_default_on(self, small_topology):
        arrivals = np.full((2, 2), 40.0)
        prices = np.array([0.05, 0.12])
        plan = ProfitAwareOptimizer(small_topology).plan_slot(arrivals, prices)
        loads = plan.server_loads()
        active = loads.sum(axis=0) > 1e-9
        assert np.allclose(plan.shares[:, active].sum(axis=0), 1.0)
