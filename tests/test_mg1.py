"""Tests for M/G/1 (Pollaczek-Khinchine) and Eq.-1 robustness."""

import numpy as np
import pytest

from repro.des.engine import Engine
from repro.des.measurements import SojournStats
from repro.des.server import FCFSQueueServer
from repro.queueing.mg1 import MG1Queue, deadline_inflation_factor, mg1_mean_delay
from repro.queueing.mm1 import mm1_mean_delay
from repro.utils.rng import as_generator


class TestMG1Formula:
    def test_scv_one_reduces_to_mm1(self):
        assert mg1_mean_delay(10.0, 7.0, scv=1.0) == pytest.approx(
            mm1_mean_delay(10.0, 7.0)
        )

    def test_deterministic_service_halves_wait(self):
        mu, lam = 10.0, 8.0
        exp_wait = mm1_mean_delay(mu, lam) - 1.0 / mu
        det_wait = mg1_mean_delay(mu, lam, scv=0.0) - 1.0 / mu
        assert det_wait == pytest.approx(exp_wait / 2.0)

    def test_heavy_tail_increases_delay(self):
        assert mg1_mean_delay(10.0, 8.0, scv=4.0) > mg1_mean_delay(10.0, 8.0, 1.0)

    def test_unstable_is_inf(self):
        assert mg1_mean_delay(10.0, 10.0, scv=0.5) == np.inf

    def test_vectorized(self):
        out = mg1_mean_delay(np.array([10.0, 10.0]), np.array([5.0, 11.0]),
                             scv=0.5)
        assert np.isfinite(out[0]) and np.isinf(out[1])

    def test_queue_object(self):
        q = MG1Queue(service_rate=10.0, arrival_rate=8.0, scv=0.0)
        assert q.is_stable
        assert q.mean_sojourn_time == pytest.approx(
            mg1_mean_delay(10.0, 8.0, 0.0)
        )
        # Eq. 1 overestimates delay for low-variance service.
        assert q.exponential_model_error > 0

    def test_model_error_sign_flips_with_scv(self):
        low = MG1Queue(10.0, 8.0, scv=0.2).exponential_model_error
        high = MG1Queue(10.0, 8.0, scv=3.0).exponential_model_error
        assert low > 0 > high


class TestDeadlineInflation:
    def test_scv_one_is_neutral(self):
        assert deadline_inflation_factor(0.8, 1.0) == pytest.approx(1.0)

    def test_matches_sojourn_ratio(self):
        mu, rho, scv = 10.0, 0.85, 2.5
        lam = rho * mu
        ratio = mg1_mean_delay(mu, lam, scv) / mm1_mean_delay(mu, lam)
        assert deadline_inflation_factor(rho, scv) == pytest.approx(ratio)

    def test_rejects_saturated(self):
        with pytest.raises(ValueError):
            deadline_inflation_factor(1.0, 1.0)


class TestAgainstDES:
    def _simulate(self, work_sampler, rate=10.0, lam=7.0, horizon=4000.0,
                  seed=0):
        engine = Engine()
        queue = FCFSQueueServer(engine, rate=rate,
                                stats=SojournStats(warmup_time=200.0))
        rng = as_generator(seed)
        # Drive arrivals manually with custom work sizes.
        def arrival():
            queue.arrive(work_sampler(rng))
            gap = float(rng.exponential(1.0 / lam))
            if engine.now + gap < horizon:
                engine.schedule(gap, arrival)
        engine.schedule(float(rng.exponential(1.0 / lam)), arrival)
        engine.run()
        return queue.stats.mean

    def test_deterministic_service_matches_pk(self):
        measured = self._simulate(lambda rng: 1.0, seed=3)
        predicted = mg1_mean_delay(10.0, 7.0, scv=0.0)
        assert measured == pytest.approx(predicted, rel=0.1)

    def test_hyperexponential_service_matches_pk(self):
        # Mixture of two exponentials with mean 1 and scv > 1.
        p, m1, m2 = 0.9, 0.5556, 5.0  # mean = .9*.5556+.1*5 = 1.0

        def sampler(rng):
            mean = m1 if rng.random() < p else m2
            return float(rng.exponential(mean))

        second_moment = 2 * (p * m1**2 + (1 - p) * m2**2)
        scv = second_moment - 1.0  # var/mean^2 with mean 1
        measured = self._simulate(sampler, lam=6.0, horizon=8000.0, seed=5)
        predicted = mg1_mean_delay(10.0, 6.0, scv=scv)
        assert measured == pytest.approx(predicted, rel=0.15)
