"""Tests for DispatchPlan and net-profit evaluation."""

import numpy as np
import pytest

from repro.core.objective import evaluate_plan
from repro.core.plan import DispatchPlan


def make_plan(topology, load_per_server=50.0, share=0.8):
    """Uniform single-class plan helper for single_class_topology."""
    K, S, N = (topology.num_classes, topology.num_frontends,
               topology.num_servers)
    rates = np.full((K, S, N), load_per_server)
    shares = np.full((K, N), share)
    return DispatchPlan(topology=topology, rates=rates, shares=shares)


class TestDispatchPlan:
    def test_shape_validation(self, single_class_topology):
        with pytest.raises(ValueError, match="rates"):
            DispatchPlan(single_class_topology, np.zeros((1, 1, 3)),
                         np.zeros((1, 4)))
        with pytest.raises(ValueError, match="shares"):
            DispatchPlan(single_class_topology, np.zeros((1, 1, 4)),
                         np.zeros((1, 3)))

    def test_share_budget_enforced(self, small_topology):
        rates = np.zeros((2, 2, 5))
        shares = np.full((2, 5), 0.6)  # sums to 1.2 per server
        with pytest.raises(ValueError, match="exceed"):
            DispatchPlan(small_topology, rates, shares)

    def test_server_loads(self, single_class_topology):
        plan = make_plan(single_class_topology, load_per_server=30.0)
        assert plan.server_loads().tolist() == [[30.0] * 4]

    def test_dc_aggregation(self, small_topology):
        rates = np.zeros((2, 2, 5))
        rates[0, 0, 0] = 10.0  # dc1 server
        rates[0, 1, 4] = 20.0  # dc2 server
        plan = DispatchPlan(small_topology, rates, np.full((2, 5), 0.25))
        dc_rates = plan.dc_rates()
        assert dc_rates[0, 0, 0] == 10.0
        assert dc_rates[0, 1, 1] == 20.0
        assert plan.dc_loads()[0].tolist() == [10.0, 20.0]

    def test_delays_match_eq1(self, single_class_topology):
        plan = make_plan(single_class_topology, load_per_server=50.0, share=0.8)
        # effective rate = 0.8*150 = 120, delay = 1/(120-50)
        expected = 1.0 / (0.8 * 150.0 - 50.0)
        assert plan.delays()[0, 0] == pytest.approx(expected)

    def test_delays_nan_when_unloaded(self, single_class_topology):
        plan = make_plan(single_class_topology, load_per_server=0.0)
        assert np.all(np.isnan(plan.delays()))

    def test_delay_inf_when_overloaded(self, single_class_topology):
        plan = make_plan(single_class_topology, load_per_server=130.0, share=0.8)
        assert np.all(np.isinf(plan.delays()))

    def test_active_servers(self, single_class_topology):
        rates = np.zeros((1, 1, 4))
        rates[0, 0, :2] = 10.0
        plan = DispatchPlan(single_class_topology, rates, np.full((1, 4), 0.5))
        assert plan.active_server_mask().tolist() == [True, True, False, False]
        assert plan.powered_on_per_dc().tolist() == [2]

    def test_meets_deadlines(self, single_class_topology):
        good = make_plan(single_class_topology, load_per_server=50.0, share=0.8)
        assert good.meets_deadlines()
        # effective 120, load 119 -> delay 1.0 >> 0.02 deadline
        bad = make_plan(single_class_topology, load_per_server=119.0, share=0.8)
        assert not bad.meets_deadlines()

    def test_empty_plan(self, small_topology):
        plan = DispatchPlan.empty(small_topology)
        assert plan.served_rates().tolist() == [0.0, 0.0]
        assert plan.powered_on_per_dc().tolist() == [0, 0]


class TestEvaluatePlan:
    def test_profit_breakdown_hand_computed(self, single_class_topology):
        topo = single_class_topology
        rates = np.zeros((1, 1, 4))
        rates[0, 0, 0] = 50.0
        plan = DispatchPlan(topo, rates, np.full((1, 4), 0.8))
        arrivals = np.array([[80.0]])
        prices = np.array([0.1])
        out = evaluate_plan(plan, arrivals, prices, slot_duration=2.0)
        # delay = 1/(120-50) < 0.02 -> full 10$/request
        assert out.revenue == pytest.approx(10.0 * 50.0 * 2.0)
        # energy: 3e-4 kWh * 0.1 $/kWh * 50 req/u * 2
        assert out.energy_cost == pytest.approx(3e-5 * 50 * 2)
        # transfer: 0.003 $/mile/req * 500 miles * 50 * 2
        assert out.transfer_cost == pytest.approx(1.5 * 50 * 2)
        assert out.net_profit == pytest.approx(
            out.revenue - out.energy_cost - out.transfer_cost
        )
        assert out.served_requests == pytest.approx(100.0)
        assert out.dropped_rates.tolist() == [30.0]
        assert out.completion_fractions[0] == pytest.approx(50.0 / 80.0)

    def test_zero_utility_past_deadline_still_costs(self, single_class_topology):
        topo = single_class_topology
        rates = np.zeros((1, 1, 4))
        rates[0, 0, 0] = 119.0  # delay = 1.0 >> deadline 0.02
        plan = DispatchPlan(topo, rates, np.full((1, 4), 0.8))
        out = evaluate_plan(plan, np.array([[119.0]]), np.array([0.1]))
        assert out.revenue == 0.0
        assert out.total_cost > 0.0
        assert out.net_profit < 0.0

    def test_overdispatch_rejected(self, single_class_topology):
        plan = make_plan(single_class_topology, load_per_server=50.0)
        with pytest.raises(ValueError, match="more than the offered"):
            evaluate_plan(plan, np.array([[10.0]]), np.array([0.1]))

    def test_energy_kwh_tracked(self, single_class_topology):
        plan = make_plan(single_class_topology, load_per_server=25.0)
        out = evaluate_plan(plan, np.array([[100.0]]), np.array([0.1]),
                            slot_duration=1.0)
        assert out.energy_kwh == pytest.approx(3e-4 * 100.0)

    def test_pue_raises_energy_cost(self, single_class_topology):
        topo = single_class_topology
        dc = topo.datacenters[0]
        import dataclasses
        dc_pue = dataclasses.replace(dc, pue=1.5)
        topo_pue = topo.with_datacenters([dc_pue])
        plan = make_plan(topo_pue, load_per_server=25.0)
        base = evaluate_plan(plan, np.array([[100.0]]), np.array([0.1]))
        with_pue = evaluate_plan(plan, np.array([[100.0]]), np.array([0.1]),
                                 apply_pue=True)
        assert with_pue.energy_cost == pytest.approx(1.5 * base.energy_cost)

    def test_shape_validation(self, single_class_topology):
        plan = make_plan(single_class_topology, 10.0)
        with pytest.raises(ValueError, match="arrivals"):
            evaluate_plan(plan, np.zeros((2, 1)), np.array([0.1]))
        with pytest.raises(ValueError, match="prices"):
            evaluate_plan(plan, np.array([[100.0]]), np.array([0.1, 0.2]))

    def test_multilevel_realized_levels(self, multilevel_topology):
        topo = multilevel_topology
        K, S, N = 2, 1, 6
        rates = np.zeros((K, S, N))
        shares = np.zeros((K, N))
        # Class 0 on server 0: delay in level 1 (between 0.002 and 0.006).
        shares[0, 0] = 0.1  # effective = 500; load 200 -> delay 1/300 = 0.0033
        rates[0, 0, 0] = 200.0
        plan = DispatchPlan(topo, rates, shares)
        out = evaluate_plan(plan, np.array([[200.0], [0.0]]),
                            np.array([0.1, 0.1]))
        # Level-2 utility (4 $) earned, not level-1 (10 $).
        assert out.revenue == pytest.approx(4.0 * 200.0)
