"""End-to-end tests for the ``repro bench`` CLI.

Drives :func:`repro.cli.main` exactly as a shell would: exit codes
(``0`` clean, ``1`` regression/rejected baseline, ``2`` usage error),
scenario selection, smoke mode, output placement, and every baseline
comparison outcome — pass, determinism drift, ratio regression,
malformed JSON, and an old schema version.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.bench.schema import SCHEMA_VERSION, bench_filename, load_record

#: The cheapest real scenario — 6 §VI slots in smoke mode.
FAST = "paper_scale"


def _bench(*argv):
    return main(["bench", *argv])


def _run_smoke(out_dir, scenario=FAST):
    code = _bench("--scenario", scenario, "--smoke", "--out", str(out_dir))
    assert code == 0
    return load_record(Path(out_dir) / bench_filename(scenario))


class TestUsageErrors:
    def test_no_selection_is_usage_error(self, tmp_path, capsys):
        assert _bench("--out", str(tmp_path)) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_all_and_scenario_conflict(self, tmp_path, capsys):
        assert _bench("--all", "--scenario", FAST,
                      "--out", str(tmp_path)) == 2
        assert "not both" in capsys.readouterr().err

    def test_unknown_scenario(self, tmp_path, capsys):
        assert _bench("--scenario", "nope", "--out", str(tmp_path)) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert FAST in err  # the catalog is listed to help the caller

    def test_negative_tolerance(self, tmp_path, capsys):
        assert _bench("--scenario", FAST, "--out", str(tmp_path),
                      "--tolerance", "-1") == 2
        assert "tolerance" in capsys.readouterr().err


class TestListAndRun:
    def test_list_prints_catalog(self, capsys):
        assert _bench("--list") == 0
        out = capsys.readouterr().out
        for name in ("paper_scale", "streaming_ingest", "fleet_10x",
                     "fleet_100x", "warm_vs_cold", "des_million"):
            assert name in out

    def test_smoke_run_writes_valid_record(self, tmp_path):
        record = _run_smoke(tmp_path)
        assert record["schema"] == SCHEMA_VERSION
        assert record["scenario"] == FAST
        assert record["mode"] == "smoke"
        assert record["timing"]["wall_s"] > 0

    def test_out_directory_is_created(self, tmp_path):
        nested = tmp_path / "does" / "not" / "exist"
        _run_smoke(nested)
        assert (nested / bench_filename(FAST)).exists()

    def test_scenario_flag_selects_only_that_scenario(self, tmp_path):
        _run_smoke(tmp_path)
        written = sorted(p.name for p in tmp_path.glob("BENCH_*.json"))
        assert written == [bench_filename(FAST)]

    def test_seed_override_lands_in_record(self, tmp_path):
        code = _bench("--scenario", FAST, "--smoke", "--seed", "7",
                      "--out", str(tmp_path))
        assert code == 0
        record = load_record(tmp_path / bench_filename(FAST))
        assert record["seed"] == 7


class TestBaselineChecks:
    def test_missing_baseline_warns_but_passes(self, tmp_path, capsys):
        out = tmp_path / "out"
        empty = tmp_path / "baselines"
        empty.mkdir()
        code = _bench("--scenario", FAST, "--smoke", "--out", str(out),
                      "--check", "--baseline-dir", str(empty))
        assert code == 0
        assert "no baseline" in capsys.readouterr().out

    def test_identical_rerun_passes_check(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        _run_smoke(baseline_dir)
        out = tmp_path / "out"
        # Same machine, same mode, same seed: determinism must hold;
        # the wide tolerance keeps wall-time jitter out of the test.
        code = _bench("--scenario", FAST, "--smoke", "--out", str(out),
                      "--check", "--baseline-dir", str(baseline_dir),
                      "--tolerance", "5.0")
        assert code == 0
        assert ": OK" in capsys.readouterr().out

    def test_determinism_drift_fails(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        record = _run_smoke(baseline_dir)
        record["determinism"]["total_net_profit"] += 1.0
        path = baseline_dir / bench_filename(FAST)
        path.write_text(json.dumps(record))
        code = _bench("--scenario", FAST, "--smoke",
                      "--out", str(tmp_path / "out"),
                      "--check", "--baseline-dir", str(baseline_dir),
                      "--tolerance", "5.0")
        assert code == 1
        assert "determinism drift" in capsys.readouterr().out

    def test_ratio_regression_fails(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        record = _run_smoke(baseline_dir, scenario="des_million")
        # A baseline claiming an impossible speedup: the fresh run's
        # genuine ratio must land far below floor = 1000 * (1 - tol).
        record["timing"]["ratios"]["engine_speedup"] = 1000.0
        path = baseline_dir / bench_filename("des_million")
        path.write_text(json.dumps(record))
        code = _bench("--scenario", "des_million", "--smoke",
                      "--out", str(tmp_path / "out"),
                      "--check", "--baseline-dir", str(baseline_dir),
                      "--tolerance", "0.25")
        assert code == 1
        assert "ratio regression" in capsys.readouterr().out

    def test_malformed_json_baseline_fails(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        (baseline_dir / bench_filename(FAST)).write_text("{not json")
        code = _bench("--scenario", FAST, "--smoke",
                      "--out", str(tmp_path / "out"),
                      "--check", "--baseline-dir", str(baseline_dir))
        assert code == 1
        assert "baseline rejected" in capsys.readouterr().out

    def test_old_schema_baseline_fails(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        record = _run_smoke(baseline_dir)
        record["schema"] = "repro-bench/0"
        path = baseline_dir / bench_filename(FAST)
        path.write_text(json.dumps(record))
        code = _bench("--scenario", FAST, "--smoke",
                      "--out", str(tmp_path / "out"),
                      "--check", "--baseline-dir", str(baseline_dir))
        assert code == 1
        out = capsys.readouterr().out
        assert "schema" in out and "repro-bench/0" in out

    def test_non_object_baseline_fails(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        (baseline_dir / bench_filename(FAST)).write_text("[1, 2, 3]\n")
        code = _bench("--scenario", FAST, "--smoke",
                      "--out", str(tmp_path / "out"),
                      "--check", "--baseline-dir", str(baseline_dir))
        assert code == 1
        assert "baseline rejected" in capsys.readouterr().out
