"""`repro arch` CLI: exit codes, JSON shape, baselines, the API lock.

The negative paths at the bottom are the CI story: an injected
layering violation and an undeclared export must fail the gate with
actionable output.
"""

import json

from repro.cli import main

LAYERED = {
    "pkg/low/impl.py": "def base():\n    return 1\n",
    "pkg/high/api.py": "from pkg.low.impl import base\n",
}

# A genuine import cycle: AR011 fires with no contract injection.
VIOLATING = {
    "pkg/low/impl.py": (
        "from pkg.high.api import top\n"
        "def base():\n    return top()\n"
    ),
    "pkg/high/api.py": (
        "from pkg.low.impl import base\n"
        "def top():\n    return 1\n"
    ),
}


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        target = path.parent
        while target != root:
            init = target / "__init__.py"
            if not init.exists():
                init.write_text("")
            target = target.parent
        path.write_text(source)
    return root


def orphan_free(root):
    """A usage tree importing every fixture module, so AR030/AR031
    findings never contaminate tests aimed at other rules."""
    usage = root / "consumers"
    usage.mkdir(exist_ok=True)
    lines = []
    for path in sorted(root.glob("pkg/**/*.py")):
        rel = path.relative_to(root)
        module = ".".join(rel.with_suffix("").parts)
        module = module.replace(".__init__", "")
        lines.append(f"import {module}\n")
    (usage / "use_all.py").write_text("".join(lines))
    return usage


def arch(root, *extra):
    usage = orphan_free(root)
    argv = ["arch", str(root), "--usage-path", str(usage), *extra]
    if "--api-baseline" not in extra:
        # Keep the repo's committed API_SURFACE.json (cwd default)
        # away from fixture trees; a missing file disables the diff.
        argv += ["--api-baseline", str(root / "API_SURFACE.json")]
    return main(argv)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, LAYERED)
        assert arch(tmp_path) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, VIOLATING)
        assert arch(tmp_path) == 1
        assert "AR011" in capsys.readouterr().out  # the import cycle

    def test_missing_path_exits_two(self, capsys):
        assert main(["arch", "no/such/tree"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules_catalog(self, capsys):
        assert main(["arch", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("AR010", "AR020", "AR030", "AR040"):
            assert code in out

    def test_acceptance_gate_src_is_clean(self):
        """The merged tree passes its own gate: `repro arch src` == 0."""
        assert main(["arch", "src"]) == 0


class TestJsonFormat:
    def test_json_report_shape(self, tmp_path, capsys):
        write_tree(tmp_path, VIOLATING)
        assert arch(tmp_path, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] >= 1
        codes = {f["code"] for f in payload["findings"]}
        assert "AR011" in codes
        assert payload["details"]["modules"] >= 2

    def test_out_file_written(self, tmp_path, capsys):
        write_tree(tmp_path, LAYERED)
        out = tmp_path / "arch-report.json"
        assert arch(tmp_path, "--out", str(out)) == 0
        payload = json.loads(out.read_text())
        assert payload["findings"] == []
        capsys.readouterr()


class TestFindingsBaseline:
    def test_write_then_pass_then_regress(self, tmp_path, capsys):
        write_tree(tmp_path, VIOLATING)
        baseline = tmp_path / "arch-baseline.json"
        assert arch(
            tmp_path, "--baseline", str(baseline), "--write-baseline",
        ) == 0
        assert baseline.exists()
        capsys.readouterr()

        # Baselined findings no longer gate.
        assert arch(tmp_path, "--baseline", str(baseline)) == 0
        assert "baselined" in capsys.readouterr().out

        # A new violation (a second cycle) still fails against the
        # old baseline.
        (tmp_path / "pkg" / "c1.py").write_text(
            "from pkg.c2 import f\ndef g():\n    return f()\n"
        )
        (tmp_path / "pkg" / "c2.py").write_text(
            "from pkg.c1 import g\ndef f():\n    return g()\n"
        )
        assert arch(tmp_path, "--baseline", str(baseline)) == 1
        capsys.readouterr()

    def test_write_baseline_requires_file(self, tmp_path, capsys):
        write_tree(tmp_path, LAYERED)
        assert main(["arch", str(tmp_path), "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err


class TestApiBaselineFlow:
    def test_write_then_lock_then_drift(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "pkg/sub/__init__.py": (
                "from pkg.sub.impl import stable\n"
                "__all__ = [\"stable\"]\n"
            ),
            "pkg/sub/impl.py": (
                "def stable(x: int) -> int:\n    return x\n"
            ),
            "pkg/consume.py": "from pkg.sub import stable\n",
        })
        snapshot = tmp_path / "API_SURFACE.json"
        assert arch(
            tmp_path, "--api-baseline", str(snapshot),
            "--write-api-baseline",
        ) == 0
        assert "wrote API surface" in capsys.readouterr().out

        # Unchanged tree passes against its own snapshot.
        assert arch(tmp_path, "--api-baseline", str(snapshot)) == 0
        capsys.readouterr()

        # Signature drift fails with AR020.
        (tmp_path / "pkg" / "sub" / "impl.py").write_text(
            "def stable(x: int, y: int = 1) -> int:\n    return x + y\n"
        )
        assert arch(tmp_path, "--api-baseline", str(snapshot)) == 1
        assert "AR020" in capsys.readouterr().out

    def test_undeclared_export_fails_the_gate(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "pkg/sub/__init__.py": (
                "from pkg.sub.impl import stable\n"
                "__all__ = [\"stable\"]\n"
            ),
            "pkg/sub/impl.py": (
                "def stable(x: int) -> int:\n    return x\n"
            ),
            "pkg/consume.py": "from pkg.sub import stable\n",
        })
        snapshot = tmp_path / "API_SURFACE.json"
        assert arch(
            tmp_path, "--api-baseline", str(snapshot),
            "--write-api-baseline",
        ) == 0
        capsys.readouterr()

        (tmp_path / "pkg" / "sub" / "__init__.py").write_text(
            "from pkg.sub.impl import stable, fresh\n"
            "__all__ = [\"stable\", \"fresh\"]\n"
        )
        (tmp_path / "pkg" / "sub" / "impl.py").write_text(
            "def stable(x: int) -> int:\n    return x\n"
            "def fresh() -> int:\n    return 2\n"
        )
        (tmp_path / "pkg" / "consume.py").write_text(
            "from pkg.sub import stable, fresh\n"
        )
        assert arch(tmp_path, "--api-baseline", str(snapshot)) == 1
        assert "AR021" in capsys.readouterr().out

    def test_corrupt_api_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, LAYERED)
        bad = tmp_path / "API_SURFACE.json"
        bad.write_text("{not json")
        assert main([
            "arch", str(tmp_path), "--api-baseline", str(bad),
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_committed_snapshot_matches_live_surface(self):
        """Byte-for-byte: regenerating API_SURFACE.json is a no-op.

        This is the committed lock the CI diff relies on — if it
        fails, run `repro arch --write-api-baseline` and review the
        diff."""
        from repro.analysis.arch import (
            build_api_surface,
            build_tree_index,
            render_api_surface,
        )

        live = render_api_surface(
            build_api_surface(build_tree_index(["src"]))
        )
        with open("API_SURFACE.json", "r", encoding="utf-8") as handle:
            committed = handle.read()
        assert committed == live


class TestInjectedRegression:
    def test_layering_violation_in_src_copy_fails(self, tmp_path, capsys):
        """CI story: an eager upward import fails the real contract."""
        src = tmp_path / "src"
        pkg = src / "repro" / "utils"
        pkg.mkdir(parents=True)
        (src / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "rogue.py").write_text(
            "from repro.core.plan import DispatchPlan\n"
        )
        core = src / "repro" / "core"
        core.mkdir()
        (core / "__init__.py").write_text("")
        (core / "plan.py").write_text(
            "class DispatchPlan:\n    pass\n"
        )
        usage = tmp_path / "consumers"
        usage.mkdir()
        (usage / "use.py").write_text(
            "import repro.utils.rogue\nimport repro.core.plan\n"
        )
        assert main([
            "arch", str(src), "--usage-path", str(usage),
        ]) == 1
        out = capsys.readouterr().out
        assert "AR010" in out
        assert "repro.utils.rogue -> repro.core.plan" in out
