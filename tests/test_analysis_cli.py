"""`repro lint` CLI: exit codes, JSON output, baselines, rule listing."""

import json

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    read_baseline,
    write_baseline,
)
from repro.analysis.diagnostics import Diagnostic
from repro.cli import main

DIRTY = "def check(a):\n    return a == 0.0\n"
CLEAN = "def check(a):\n    return abs(a) <= 1e-12\n"


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "dirty.py").write_text(DIRTY)
    (pkg / "clean.py").write_text(CLEAN)
    return pkg


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "RP001" in out
        assert "dirty.py:2" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/path"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_acceptance_gate_src_is_clean(self):
        """The merged tree passes its own gate: `repro lint src` == 0."""
        assert main(["lint", "src"]) == 0


class TestJsonFormat:
    def test_json_report_shape(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["files_checked"] == 2
        (finding,) = payload["findings"]
        assert finding["code"] == "RP001"
        assert finding["line"] == 2
        assert finding["path"].endswith("dirty.py")

    def test_json_clean_report(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main(["lint", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []


class TestBaseline:
    def test_write_then_pass(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(dirty_tree),
            "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert baseline.exists()
        capsys.readouterr()

        # Same tree, same baseline: the old finding no longer gates.
        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline)
        ]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_finding_still_fails(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["lint", str(dirty_tree),
              "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        (dirty_tree / "fresh.py").write_text("b = x != 2.5\n")
        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline)
        ]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "dirty.py" not in out  # absorbed by the baseline

    def test_write_baseline_requires_file(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, dirty_tree, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 99, \"findings\": []}")
        assert main([
            "lint", str(dirty_tree), "--baseline", str(bad)
        ]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_baseline_is_a_multiset(self):
        from collections import Counter

        from repro.analysis.baseline import Baseline

        d = Diagnostic(path="a.py", line=3, col=0, code="RP001", message="m")
        twin = Diagnostic(path="a.py", line=3, col=4, code="RP001", message="m2")
        baseline = Baseline(entries=Counter({d.fingerprint: 1}))
        # Both findings share the fingerprint, but one entry absorbs only one.
        fresh, absorbed = apply_baseline([d, twin], baseline)
        assert absorbed == 1
        assert fresh == [twin]

    def test_roundtrip_preserves_fingerprints(self, tmp_path):
        findings = [
            Diagnostic(path="a.py", line=3, col=1, code="RP002", message="x"),
            Diagnostic(path="b.py", line=9, col=0, code="RP006", message="y"),
        ]
        path = tmp_path / "b.json"
        assert write_baseline(findings, str(path)) == 2
        loaded = read_baseline(str(path))
        assert len(loaded) == 2
        fresh, absorbed = apply_baseline(findings, loaded)
        assert fresh == [] and absorbed == 2

    def test_write_baseline_is_byte_stable(self, dirty_tree, tmp_path, capsys):
        """Regression: --write-baseline twice on an unchanged tree must
        produce byte-identical files (the multiset serialization is
        sorted, not dependent on traversal or caller order)."""
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for target in (first, second):
            assert main([
                "lint", str(dirty_tree),
                "--baseline", str(target), "--write-baseline",
            ]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_write_baseline_order_independent(self, tmp_path):
        """The serialized baseline does not depend on input ordering —
        same multiset of findings, shuffled, gives the same bytes."""
        findings = [
            Diagnostic(path="b.py", line=9, col=0, code="RP006", message="y"),
            Diagnostic(path="a.py", line=3, col=4, code="RP001", message="m2"),
            Diagnostic(path="a.py", line=3, col=1, code="RP002", message="x"),
            Diagnostic(path="a.py", line=3, col=0, code="RP001", message="m"),
        ]
        forward = tmp_path / "forward.json"
        backward = tmp_path / "backward.json"
        write_baseline(findings, str(forward))
        write_baseline(list(reversed(findings)), str(backward))
        assert forward.read_bytes() == backward.read_bytes()
        # And the round trip still absorbs every finding.
        fresh, absorbed = apply_baseline(findings, read_baseline(str(forward)))
        assert fresh == [] and absorbed == 4


class TestListRules:
    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RP001", "RP002", "RP003", "RP004", "RP005", "RP006"):
            assert code in out
