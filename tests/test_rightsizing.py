"""Tests for server right-sizing and load consolidation."""

import numpy as np
import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import ProfitAwareOptimizer
from repro.core.plan import DispatchPlan
from repro.core.rightsizing import (
    consolidate_plan,
    minimum_servers_for_load,
    powered_on_servers,
)


class TestMinimumServers:
    def test_zero_load_needs_zero_servers(self):
        m = minimum_servers_for_load(
            loads=np.array([0.0, 0.0]),
            service_rates=np.array([100.0, 100.0]),
            capacity=1.0,
            deadlines=np.array([0.1, 0.1]),
            max_servers=5,
        )
        assert m == 0

    def test_single_class_exact(self):
        # One server with full share admits mu - 1/D = 100 - 10 = 90.
        m = minimum_servers_for_load(
            loads=np.array([85.0]),
            service_rates=np.array([100.0]),
            capacity=1.0,
            deadlines=np.array([0.1]),
            max_servers=10,
        )
        assert m == 1
        m2 = minimum_servers_for_load(
            loads=np.array([95.0]),
            service_rates=np.array([100.0]),
            capacity=1.0,
            deadlines=np.array([0.1]),
            max_servers=10,
        )
        assert m2 == 2

    def test_insufficient_capacity_returns_none(self):
        m = minimum_servers_for_load(
            loads=np.array([1e6]),
            service_rates=np.array([100.0]),
            capacity=1.0,
            deadlines=np.array([0.1]),
            max_servers=3,
        )
        assert m is None

    def test_impossible_fixed_overhead(self):
        # Deadlines so tight the per-server reservations exceed 1.
        m = minimum_servers_for_load(
            loads=np.array([1.0, 1.0]),
            service_rates=np.array([10.0, 10.0]),
            capacity=1.0,
            deadlines=np.array([0.1, 0.1]),
            max_servers=100,
        )
        assert m is None

    def test_result_is_feasible(self):
        loads = np.array([120.0, 80.0])
        mu = np.array([100.0, 90.0])
        deadlines = np.array([0.2, 0.3])
        m = minimum_servers_for_load(loads, mu, 1.0, deadlines, 50)
        assert m is not None
        shares = (loads / m + 1.0 / deadlines) / mu
        assert shares.sum() <= 1.0 + 1e-9
        if m > 1:
            shares_less = (loads / (m - 1) + 1.0 / deadlines) / mu
            assert shares_less.sum() > 1.0


class TestConsolidatePlan:
    def _light_plan(self, topology):
        opt = ProfitAwareOptimizer(topology)
        arrivals = np.full(
            (topology.num_classes, topology.num_frontends), 10.0
        )
        prices = np.full(topology.num_datacenters, 0.1)
        return opt.plan_slot(arrivals, prices), arrivals, prices

    def test_reduces_powered_on_servers(self, small_topology):
        plan, arrivals, prices = self._light_plan(small_topology)
        packed = consolidate_plan(plan)
        assert (packed.powered_on_per_dc().sum()
                <= plan.powered_on_per_dc().sum())

    def test_profit_preserved(self, small_topology):
        plan, arrivals, prices = self._light_plan(small_topology)
        packed = consolidate_plan(plan)
        before = evaluate_plan(plan, arrivals, prices).net_profit
        after = evaluate_plan(packed, arrivals, prices).net_profit
        assert after == pytest.approx(before, rel=1e-9)

    def test_served_rates_preserved(self, small_topology):
        plan, _, _ = self._light_plan(small_topology)
        packed = consolidate_plan(plan)
        assert np.allclose(packed.served_rates(), plan.served_rates())
        # Per-(k, s) attribution also preserved.
        assert np.allclose(packed.rates.sum(axis=2), plan.rates.sum(axis=2))

    def test_deadlines_still_met(self, small_topology):
        plan, _, _ = self._light_plan(small_topology)
        packed = consolidate_plan(plan)
        assert packed.meets_deadlines()

    def test_empty_plan(self, small_topology):
        plan = DispatchPlan.empty(small_topology)
        packed = consolidate_plan(plan)
        assert packed.powered_on_per_dc().sum() == 0

    def test_powered_on_servers_helper(self, small_topology):
        plan, _, _ = self._light_plan(small_topology)
        assert np.array_equal(powered_on_servers(plan),
                              plan.powered_on_per_dc())

    def test_multilevel_levels_preserved(self, multilevel_topology):
        opt = ProfitAwareOptimizer(multilevel_topology)
        arrivals = np.array([[3000.0], [2500.0]])
        prices = np.array([0.05, 0.09])
        plan = opt.plan_slot(arrivals, prices)
        packed = consolidate_plan(plan)
        before = evaluate_plan(plan, arrivals, prices).net_profit
        after = evaluate_plan(packed, arrivals, prices).net_profit
        # Consolidation keeps each class's achieved level: profit equal.
        assert after == pytest.approx(before, rel=1e-9)
