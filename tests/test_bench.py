"""Tests for the ``repro.bench`` subsystem (runner, schema, scenarios).

Three groups:

* runner/schema unit tests — :func:`summarize_times`,
  :class:`TimingResult`, record building/validation, and the baseline
  comparison policy (determinism vs timing, ratios vs wall time);
* the determinism regression: running a scenario twice with the same
  seed must produce bit-identical non-timing fields — the contract the
  ``BENCH_*.json`` trajectory and CI gate rest on;
* the dedupe pin: Fig. 11 and ``benchmarks/bench_warmstart.py`` must
  aggregate through the *same* ``repro.bench`` median as the scenarios,
  so the benchmark scripts cannot drift apart again.
"""

import json
import math
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench.runner import TimingResult, summarize_times, time_callable
from repro.bench.scenarios import available_scenarios, run_scenario
from repro.bench.schema import (
    MODES,
    NONDETERMINISTIC_KEYS,
    SCHEMA_VERSION,
    bench_filename,
    build_record,
    compare_records,
    load_record,
    strip_nondeterministic,
    validate_record,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Trivial workloads per scenario so the full catalog runs in seconds.
TINY_OVERRIDES = {
    "paper_scale": {"slots": 2, "repeats": 1, "warmup": 0},
    "streaming_ingest": {"slots": 4, "ticks_per_slot": 2, "repeats": 1,
                         "warmup": 0},
    "fleet_10x": {"slots": 1, "repeats": 1, "warmup": 0,
                  "ratio_slots": 1, "ratio_repeats": 1},
    "fleet_100x": {"slots": 1, "repeats": 1, "warmup": 0,
                   "ratio_slots": 1, "ratio_repeats": 1},
    "warm_vs_cold": {"slots": 2, "repeats": 1, "warmup": 0,
                     "servers_per_dc": 2},
    "des_million": {"requests": 2_000, "repeats": 1},
}


def _valid_timing():
    return {
        "wall_s": 0.5,
        "samples_s": [0.5, 0.6],
        "warmup": 1,
        "median_s": 0.55,
        "mean_s": 0.55,
        "min_s": 0.5,
        "max_s": 0.6,
        "per_phase_s": {"solve": 0.4},
        "peak_rss_mb": 100.0,
        "ratios": {"speedup": 2.0},
        "throughput": {"events_per_s": 1000.0},
    }


def _valid_record(**updates):
    record = build_record(
        scenario="unit",
        mode="full",
        seed=7,
        config={"n": 1},
        determinism={"objective": 1.25, "counts": [1, 2, 3]},
        timing=_valid_timing(),
        machine={"platform": "test", "python": "3"},
        created_unix=1754500000.0,
    )
    record.update(updates)
    return record


class TestRunner:
    def test_median_odd_and_even(self):
        assert summarize_times([3.0, 1.0, 2.0])["median_s"] == 2.0
        assert summarize_times([4.0, 1.0, 2.0, 3.0])["median_s"] == 2.5

    def test_summary_fields(self):
        stats = summarize_times([2.0, 1.0, 4.0])
        assert stats == {"median_s": 2.0, "mean_s": pytest.approx(7.0 / 3),
                         "min_s": 1.0, "max_s": 4.0}

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            summarize_times([])

    def test_time_callable_counts_calls_and_returns_result(self):
        calls = []

        def fn():
            calls.append(len(calls))
            return len(calls)

        timing, result = time_callable(fn, repeats=3, warmup=2)
        assert len(calls) == 5          # warmup + repeats
        assert result == 5              # value from the final run
        assert timing.repeats == 3
        assert timing.warmup == 2
        assert all(s >= 0 for s in timing.samples_s)

    def test_time_callable_validates_arguments(self):
        with pytest.raises(ValueError, match="repeats"):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            time_callable(lambda: None, warmup=-1)

    def test_timing_result_properties_match_summarize(self):
        timing = TimingResult(samples_s=(0.3, 0.1, 0.2), warmup=1)
        stats = summarize_times(timing.samples_s)
        assert timing.median_s == stats["median_s"]
        assert timing.mean_s == stats["mean_s"]
        assert timing.min_s == stats["min_s"]
        assert timing.max_s == stats["max_s"]
        as_dict = timing.to_dict()
        assert as_dict["samples_s"] == [0.3, 0.1, 0.2]
        assert as_dict["warmup"] == 1


class TestSchema:
    def test_filename(self):
        assert bench_filename("des_million") == "BENCH_des_million.json"

    def test_build_record_valid(self):
        record = _valid_record()
        assert record["schema"] == SCHEMA_VERSION
        assert validate_record(record) == []

    def test_build_record_rejects_bad_sections(self):
        with pytest.raises(ValueError, match="invalid bench record"):
            build_record(
                scenario="unit", mode="nope", seed=7, config={},
                determinism={}, timing=_valid_timing(),
                machine={}, created_unix=0.0,
            )

    @pytest.mark.parametrize("corrupt, fragment", [
        ({"schema": "repro-bench/0"}, "schema"),
        ({"mode": "fast"}, "mode"),
        ({"seed": "7"}, "seed"),
        ({"determinism": []}, "determinism"),
        ({"timing": {}}, "wall_s"),
    ])
    def test_validate_flags_corruption(self, corrupt, fragment):
        record = _valid_record(**corrupt)
        problems = validate_record(record)
        assert problems
        assert any(fragment in p for p in problems)

    def test_validate_non_dict(self):
        assert validate_record([1, 2]) != []
        assert validate_record(None) != []

    def test_strip_nondeterministic(self):
        record = _valid_record()
        stable = strip_nondeterministic(record)
        for key in NONDETERMINISTIC_KEYS:
            assert key not in stable
        assert stable["determinism"] == record["determinism"]
        assert stable["scenario"] == record["scenario"]

    def test_modes_are_the_cli_modes(self):
        assert MODES == ("full", "smoke")


class TestCompareRecords:
    def test_identical_records_pass(self):
        comparison = compare_records(_valid_record(), _valid_record())
        assert comparison.ok
        assert comparison.problems == ()

    def test_old_schema_baseline_is_hard_failure(self):
        comparison = compare_records(
            _valid_record(schema="repro-bench/0"), _valid_record()
        )
        assert not comparison.ok
        assert any("baseline record rejected" in p
                   for p in comparison.problems)

    def test_scenario_mismatch_fails(self):
        comparison = compare_records(
            _valid_record(scenario="other"), _valid_record()
        )
        assert not comparison.ok

    def test_determinism_drift_fails_same_mode_and_seed(self):
        current = _valid_record()
        current["determinism"] = dict(current["determinism"],
                                      objective=99.0)
        comparison = compare_records(_valid_record(), current)
        assert not comparison.ok
        assert any("determinism drift" in p for p in comparison.problems)

    def test_determinism_skipped_across_modes(self):
        current = _valid_record(mode="smoke")
        current["determinism"] = dict(current["determinism"],
                                      objective=99.0)
        comparison = compare_records(_valid_record(), current)
        assert comparison.ok
        assert any("determinism skipped" in n for n in comparison.notes)

    def test_ratio_regression_fails_even_across_machines(self):
        current = _valid_record(machine={"platform": "elsewhere"})
        current["timing"] = dict(current["timing"], ratios={"speedup": 1.0})
        comparison = compare_records(_valid_record(), current,
                                     tolerance=0.25)
        assert not comparison.ok
        assert any("ratio regression" in p for p in comparison.problems)

    def test_ratio_within_tolerance_passes(self):
        current = _valid_record()
        current["timing"] = dict(current["timing"], ratios={"speedup": 1.6})
        assert compare_records(_valid_record(), current,
                               tolerance=0.25).ok

    def test_wall_time_only_compared_on_same_machine_and_mode(self):
        slow = _valid_record()
        slow["timing"] = dict(slow["timing"], wall_s=50.0)
        same_machine = compare_records(_valid_record(), slow, tolerance=0.25)
        assert any("wall-time regression" in p
                   for p in same_machine.problems)

        slow_elsewhere = _valid_record(machine={"platform": "elsewhere"})
        slow_elsewhere["timing"] = dict(slow_elsewhere["timing"], wall_s=50.0)
        other_machine = compare_records(_valid_record(), slow_elsewhere,
                                        tolerance=0.25)
        assert other_machine.ok
        assert any("wall-time skipped" in n for n in other_machine.notes)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_records(_valid_record(), _valid_record(), tolerance=-0.1)

    def test_load_record_roundtrip(self, tmp_path):
        path = tmp_path / bench_filename("unit")
        with path.open("w") as fh:
            json.dump(_valid_record(), fh)
        assert load_record(path) == _valid_record()

    def test_load_record_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="JSON object"):
            load_record(path)


class TestScenarioDeterminism:
    """`repro bench` run twice with one seed must agree bit for bit."""

    @pytest.mark.parametrize("name", sorted(TINY_OVERRIDES))
    def test_catalog_covers_scenario(self, name):
        assert name in available_scenarios()

    @pytest.mark.parametrize("name", ["paper_scale", "streaming_ingest",
                                      "warm_vs_cold", "des_million"])
    def test_same_seed_identical_nontiming_fields(self, name):
        first = run_scenario(name, mode="smoke",
                             overrides=TINY_OVERRIDES[name])
        second = run_scenario(name, mode="smoke",
                              overrides=TINY_OVERRIDES[name])
        stable_first = strip_nondeterministic(first)
        stable_second = strip_nondeterministic(second)
        # JSON round-trip: what gets committed is what must be stable.
        assert json.loads(json.dumps(stable_first, sort_keys=True)) == \
            json.loads(json.dumps(stable_second, sort_keys=True))
        # Timing fields are present and sane even though they may vary.
        for record in (first, second):
            assert validate_record(record) == []
            assert record["timing"]["wall_s"] > 0
            assert math.isfinite(record["timing"]["peak_rss_mb"])

    def test_seed_override_changes_determinism_section(self):
        base = run_scenario("paper_scale", mode="smoke", seed=1998,
                            overrides=TINY_OVERRIDES["paper_scale"])
        other = run_scenario("paper_scale", mode="smoke", seed=2024,
                             overrides=TINY_OVERRIDES["paper_scale"])
        assert base["seed"] == 1998 and other["seed"] == 2024
        assert base["determinism"] != other["determinism"]

    def test_paper_scale_tracks_certify_overhead(self):
        record = run_scenario("paper_scale", mode="smoke",
                              overrides=TINY_OVERRIDES["paper_scale"])
        # The certify-off-vs-on ratio is the CI gate for verification
        # overhead; every certified solve in the loop must come back
        # clean or the ratio is measuring a broken verifier.
        assert record["timing"]["ratios"]["certify_efficiency"] > 0.0
        det = record["determinism"]
        assert det["certified_solves"] == record["config"]["certify_slots"]
        assert det["certify_error_findings"] == 0

    def test_des_million_reference_engine_agrees(self):
        record = run_scenario("des_million", mode="smoke",
                              overrides=TINY_OVERRIDES["des_million"])
        det = record["determinism"]
        assert det["reference_engine_identical"] is True
        assert det["generated"] > 0
        assert det["relative_error"] < 0.5
        assert "engine_speedup" in record["timing"]["ratios"]
        assert set(record["timing"]["per_phase_s"]) == {"horizon", "drain"}

    def test_fleet_scenario_scales_servers(self):
        record = run_scenario("fleet_10x", mode="smoke",
                              overrides=TINY_OVERRIDES["fleet_10x"])
        assert record["config"]["fleet_multiplier"] == 10
        assert record["config"]["num_servers"] == 180
        assert record["config"]["sparse"] is True
        # Sparse-path SlotTrace breakdown, new stage timings included.
        assert "decompose" in record["timing"]["per_phase_s"]
        # The per-server dense-vs-sparse ratio, with its equivalence pin.
        assert record["timing"]["ratios"]["sparse_speedup"] > 1.0
        det = record["determinism"]
        assert det["ratio_max_rel_diff"] < 1e-6
        assert len(det["ratio_objectives_dense"]) == \
            record["config"]["ratio_slots"]

    def test_streaming_ingest_tracks_solve_reduction(self):
        record = run_scenario(
            "streaming_ingest", mode="smoke",
            overrides=TINY_OVERRIDES["streaming_ingest"],
        )
        det = record["determinism"]
        assert det["drift_full_solves"] <= det["periodic_full_solves"]
        assert det["equivalence_max_rel_diff"] < 1e-6
        assert len(det["drift_profit_series"]) == det["num_slots"]
        ratios = record["timing"]["ratios"]
        assert ratios["resolve_reduction"] >= 1.0
        assert ratios["profit_ratio"] == pytest.approx(1.0, rel=1e-6)
        assert record["timing"]["throughput"]["ticks_per_s"] > 0


class TestMedianDedupe:
    """Fig. 11 and bench_warmstart share the scenarios' median."""

    @staticmethod
    def _load_benchmarks_module(name):
        sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
        try:
            return pytest.importorskip(name)
        finally:
            sys.path.pop(0)

    def test_bench_warmstart_uses_shared_summarize(self):
        bench_warmstart = self._load_benchmarks_module("bench_warmstart")
        assert bench_warmstart.summarize_times is summarize_times

    def test_fig11_uses_shared_runner(self):
        from repro.experiments import figures
        assert figures.summarize_times is summarize_times
        assert figures.time_callable is time_callable

    def test_shared_median_matches_numpy_on_fixed_samples(self):
        # The pinned contract: both benchmark scripts and the scenarios
        # reduce repeats with this exact statistic.
        rng = np.random.default_rng(1998)
        for n in (1, 2, 3, 5, 8):
            samples = rng.uniform(0.001, 2.0, size=n).tolist()
            assert summarize_times(samples)["median_s"] == \
                pytest.approx(float(np.median(samples)), abs=1e-15)

    def test_warmstart_record_median_is_shared_median(self, monkeypatch):
        bench_warmstart = self._load_benchmarks_module("bench_warmstart")
        record = bench_warmstart.measure_warmstart(
            servers_per_dc=2, num_slots=2, repeats=3, seed=2010,
        )
        assert record["speedup"] == pytest.approx(
            float(np.median(record["speedup_per_repeat"])), abs=1e-15,
        )
        assert record["speedup"] == \
            summarize_times(record["speedup_per_repeat"])["median_s"]
