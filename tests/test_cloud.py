"""Tests for the cloud substrate (data centers, topology, costs, SLA)."""

import numpy as np
import pytest

from repro.cloud.datacenter import DataCenter, Server
from repro.cloud.energy import EnergyModel, GOOGLE_WEB_SEARCH_KWH
from repro.cloud.frontend import FrontEnd
from repro.cloud.sla import ServiceLevelAgreement
from repro.cloud.topology import CloudTopology, random_topology
from repro.cloud.transfer import TransferModel
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF


class TestServer:
    def test_valid(self):
        srv = Server("dc1", 0, capacity=1.0)
        assert srv.capacity == 1.0

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Server("dc1", -1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Server("dc1", 0, capacity=0.0)


class TestDataCenter:
    def _dc(self, **kw):
        defaults = dict(
            name="dc", num_servers=4,
            service_rates=np.array([100.0, 120.0]),
            energy_per_request=np.array([1e-4, 2e-4]),
        )
        defaults.update(kw)
        return DataCenter(**defaults)

    def test_num_request_classes(self):
        assert self._dc().num_request_classes == 2

    def test_servers_iteration(self):
        servers = list(self._dc().servers())
        assert len(servers) == 4
        assert servers[2].index == 2

    def test_max_rate(self):
        dc = self._dc(server_capacity=2.0)
        assert dc.max_rate(0) == pytest.approx(200.0)
        assert dc.total_max_rate(0) == pytest.approx(800.0)

    def test_rejects_rate_energy_length_mismatch(self):
        with pytest.raises(ValueError, match="agree"):
            self._dc(energy_per_request=np.array([1e-4]))

    def test_allows_zero_servers(self):
        # A fully failed data center (zero available servers) is a valid
        # degraded state; the formulations force its load to zero.
        dc = self._dc(num_servers=0)
        assert dc.num_servers == 0
        assert list(dc.servers()) == []
        assert dc.total_max_rate(0) == 0.0

    def test_rejects_negative_servers(self):
        with pytest.raises(ValueError):
            self._dc(num_servers=-1)

    def test_rejects_pue_below_one(self):
        with pytest.raises(ValueError, match="pue"):
            self._dc(pue=0.9)

    def test_with_servers(self):
        assert self._dc().with_servers(9).num_servers == 9

    def test_scaled_rates(self):
        dc = self._dc().scaled_rates(2.0)
        assert dc.service_rates.tolist() == [200.0, 240.0]

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            self._dc(service_rates=np.array([100.0, 0.0]))


class TestCloudTopology:
    def test_sizes(self, small_topology):
        assert small_topology.num_classes == 2
        assert small_topology.num_frontends == 2
        assert small_topology.num_datacenters == 2
        assert small_topology.num_servers == 5

    def test_matrices(self, small_topology):
        assert small_topology.service_rates.shape == (2, 2)
        assert small_topology.energy_per_request.shape == (2, 2)
        assert small_topology.transfer_unit_costs.tolist() == [0.001, 0.002]

    def test_server_offsets_and_flat_index(self, small_topology):
        assert small_topology.server_offsets().tolist() == [0, 3, 5]
        assert small_topology.flat_server_index(0, 2) == 2
        assert small_topology.flat_server_index(1, 0) == 3

    def test_flat_index_bounds(self, small_topology):
        with pytest.raises(IndexError):
            small_topology.flat_server_index(0, 3)
        with pytest.raises(IndexError):
            small_topology.flat_server_index(2, 0)

    def test_iter_servers(self, small_topology):
        pairs = list(small_topology.iter_servers())
        assert pairs == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]

    def test_rejects_class_count_mismatch(self, small_topology):
        bad_dc = DataCenter("bad", 2, np.array([100.0]), np.array([1e-4]))
        with pytest.raises(ValueError, match="request classes"):
            small_topology.with_datacenters([bad_dc, bad_dc])

    def test_rejects_distance_shape(self):
        rc = RequestClass("r", ConstantTUF(1.0, 0.1))
        dc = DataCenter("d", 1, np.array([100.0]), np.array([1e-4]))
        with pytest.raises(ValueError, match="distances"):
            CloudTopology((rc,), (FrontEnd("f"),), (dc,),
                          distances=np.zeros((2, 1)))

    def test_scaled_capacity(self, small_topology):
        scaled = small_topology.scaled_capacity(3.0)
        assert scaled.service_rates[0, 0] == pytest.approx(360.0)

    def test_with_servers_per_datacenter(self, small_topology):
        resized = small_topology.with_servers_per_datacenter(7)
        assert resized.num_servers == 14

    def test_random_topology_is_valid_and_deterministic(self):
        a = random_topology(seed=3)
        b = random_topology(seed=3)
        assert a.num_servers == b.num_servers
        assert np.array_equal(a.distances, b.distances)
        assert a.num_classes == 3


class TestTransferModel:
    @pytest.fixture
    def model(self):
        return TransferModel(
            unit_costs=np.array([0.003, 0.005]),
            distances=np.array([[100.0, 200.0]]),
        )

    def test_per_request_cost(self, model):
        cost = model.per_request_cost()
        assert cost.shape == (2, 1, 2)
        assert cost[0, 0, 0] == pytest.approx(0.3)
        assert cost[1, 0, 1] == pytest.approx(1.0)

    def test_slot_cost(self, model):
        rates = np.zeros((2, 1, 2))
        rates[0, 0, 0] = 10.0  # 10 req/u at 0.3 $/req
        assert model.slot_cost(rates, slot_duration=2.0) == pytest.approx(6.0)

    def test_slot_cost_shape_check(self, model):
        with pytest.raises(ValueError, match="shape"):
            model.slot_cost(np.zeros((2, 2, 2)), 1.0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            TransferModel(np.array([[0.1]]), np.array([[1.0]]))


class TestEnergyModel:
    def _datacenters(self, pue=(1.0, 1.5)):
        return [
            DataCenter("d1", 1, np.array([100.0]), np.array([2e-4]), pue=pue[0]),
            DataCenter("d2", 1, np.array([100.0]), np.array([4e-4]), pue=pue[1]),
        ]

    def test_energy_matrix(self):
        model = EnergyModel(self._datacenters())
        assert model.energy_kwh.shape == (1, 2)
        assert model.energy_kwh[0, 1] == pytest.approx(4e-4)

    def test_pue_applied(self):
        model = EnergyModel(self._datacenters(), apply_pue=True)
        assert model.energy_kwh[0, 1] == pytest.approx(6e-4)

    def test_per_request_cost(self):
        model = EnergyModel(self._datacenters())
        cost = model.per_request_cost(np.array([0.1, 0.2]))
        assert cost[0, 0] == pytest.approx(2e-5)
        assert cost[0, 1] == pytest.approx(8e-5)

    def test_slot_cost_and_energy(self):
        model = EnergyModel(self._datacenters())
        rates = np.array([[10.0, 0.0]])
        assert model.slot_cost(rates, np.array([0.1, 0.2]), 3600.0) == \
            pytest.approx(2e-5 * 10 * 3600)
        assert model.slot_energy_kwh(rates, 3600.0) == \
            pytest.approx(2e-4 * 10 * 3600)

    def test_rejects_class_mismatch(self):
        dcs = [
            DataCenter("d1", 1, np.array([100.0]), np.array([2e-4])),
            DataCenter("d2", 1, np.array([100.0, 1.0]), np.array([1e-4, 1e-4])),
        ]
        with pytest.raises(ValueError, match="disagree"):
            EnergyModel(dcs)

    def test_google_constant(self):
        assert GOOGLE_WEB_SEARCH_KWH == pytest.approx(3e-4)


class TestServiceLevelAgreement:
    @pytest.fixture
    def sla(self, small_topology):
        return ServiceLevelAgreement(small_topology.request_classes)

    def test_revenue_per_request(self, sla):
        assert sla.revenue_per_request(0, 0.01) == pytest.approx(5.0)
        assert sla.revenue_per_request(0, 0.06) == pytest.approx(0.0)

    def test_revenue_rate(self, sla):
        total = sla.revenue_rate(np.array([0.01, 0.01]), np.array([2.0, 3.0]))
        assert total == pytest.approx(5.0 * 2 + 9.0 * 3)

    def test_level_achieved(self, sla):
        assert sla.level_achieved(0, 0.01) == 0
        assert sla.level_achieved(0, 0.10) == -1

    def test_meets_deadline(self, sla):
        assert sla.meets_deadline(1, 0.08)
        assert not sla.meets_deadline(1, 0.081)

    def test_summary(self, sla):
        summary = sla.summary()
        assert summary["r1"]["max_value"] == 5.0
        assert summary["r2"]["levels"] == 1

    def test_frontend_rejects_empty_name(self):
        with pytest.raises(ValueError):
            FrontEnd("")
