"""Architecture auditor rules (AR0xx) over synthetic fixture trees.

Each rule family gets a positive fixture (the erosion is found) and a
negative fixture (legitimate code passes).  The contract is injected
per test — a node absent from ``layers`` is unconstrained, so fixtures
only declare what they exercise.  The real tree's acceptance gates
(self-layering, ``repro arch src`` exit 0) live at the bottom.
"""

from typing import Dict

import pytest

from repro.analysis.arch import (
    DEFAULT_CONTRACT,
    LayerContract,
    all_arch_rules,
    audit_tree,
    build_api_surface,
    build_tree_index,
    default_contract,
    get_arch_rule,
    render_api_surface,
)


def write_tree(root, files: Dict[str, str]):
    """Materialize ``{relative/path.py: source}`` under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        target = path.parent
        while target != root:
            init = target / "__init__.py"
            if not init.exists():
                init.write_text("")
            target = target.parent
        path.write_text(source)
    return root


def audit(root, *, contract=None, usage_paths=(), **kwargs):
    return audit_tree(
        [str(root)], contract=contract,
        usage_paths=[str(p) for p in usage_paths], **kwargs,
    )


def codes_of(report):
    return sorted(f.code for f in report.findings)


# --------------------------------------------------------------- AR010/011


class TestLayerContract:
    CONTRACT = LayerContract(layers={
        "low": frozenset(),
        "high": frozenset({"low"}),
    })

    def test_upward_eager_import_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/low/impl.py": "from pkg.high.api import top\n",
            "pkg/high/api.py": "def top():\n    return 1\n",
        })
        report = audit(tmp_path, contract=self.CONTRACT)
        findings = [f for f in report.findings if f.code == "AR010"]
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "pkg.low.impl -> pkg.high.api" in findings[0].component
        assert findings[0].path.endswith("impl.py")

    def test_allowed_edge_passes(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/high/api.py": "from pkg.low.impl import base\n",
            "pkg/low/impl.py": "def base():\n    return 1\n",
        })
        report = audit(tmp_path, contract=self.CONTRACT)
        assert [f for f in report.findings if f.code == "AR010"] == []

    def test_lazy_import_is_exempt(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/low/impl.py": (
                "def lift():\n"
                "    from pkg.high.api import top\n"
                "    return top()\n"
            ),
            "pkg/high/api.py": "def top():\n    return 1\n",
        })
        report = audit(tmp_path, contract=self.CONTRACT)
        assert [f for f in report.findings if f.code == "AR010"] == []

    def test_type_checking_import_is_exempt(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/low/impl.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from pkg.high.api import Top\n"
            ),
            "pkg/high/api.py": "class Top:\n    pass\n",
        })
        report = audit(tmp_path, contract=self.CONTRACT)
        assert [f for f in report.findings if f.code == "AR010"] == []

    def test_sanctioned_exception_passes(self, tmp_path):
        contract = LayerContract(
            layers=dict(self.CONTRACT.layers),
            exceptions=frozenset({("pkg.low.impl", "pkg.high.api")}),
        )
        write_tree(tmp_path, {
            "pkg/low/impl.py": "from pkg.high.api import top\n",
            "pkg/high/api.py": "def top():\n    return 1\n",
        })
        report = audit(tmp_path, contract=contract)
        assert [f for f in report.findings if f.code == "AR010"] == []

    def test_import_cycle_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/a.py": "import pkg.b\n",
            "pkg/b.py": "import pkg.a\n",
        })
        report = audit(tmp_path)
        findings = [f for f in report.findings if f.code == "AR011"]
        assert len(findings) == 1
        assert "pkg.a" in findings[0].component
        assert "pkg.b" in findings[0].component

    def test_package_assembly_init_is_not_a_cycle(self, tmp_path):
        # `from pkg import helper` inside pkg/__init__.py resolves to
        # the submodule, not back to the package: no false cycle.
        write_tree(tmp_path, {
            "pkg/__init__.py": "from pkg import helper\n",
            "pkg/helper.py": "def aid():\n    return 1\n",
        })
        report = audit(tmp_path)
        assert [f for f in report.findings if f.code == "AR011"] == []


# --------------------------------------------------------------- AR020/021


SURFACE_TREE = {
    "pkg/__init__.py": (
        "from pkg.sub import stable\n"
        "__all__ = [\"sub\"]\n"
    ),
    "pkg/sub/__init__.py": (
        "from pkg.sub.impl import stable\n"
        "__all__ = [\"stable\"]\n"
    ),
    "pkg/sub/impl.py": "def stable(x: int) -> int:\n    return x\n",
}


class TestApiSurface:
    def baseline_for(self, tmp_path, files):
        write_tree(tmp_path, files)
        return build_api_surface(build_tree_index([str(tmp_path)]))

    def test_unchanged_surface_passes(self, tmp_path):
        baseline = self.baseline_for(tmp_path, SURFACE_TREE)
        report = audit(tmp_path, api_baseline=baseline)
        assert [f for f in report.findings if f.code.startswith("AR02")] \
            == []

    def test_removed_export_is_an_error(self, tmp_path):
        baseline = self.baseline_for(tmp_path, SURFACE_TREE)
        gone = dict(SURFACE_TREE)
        gone["pkg/sub/__init__.py"] = "__all__ = []\n"
        gone["pkg/sub/impl.py"] = "def _stable(x):\n    return x\n"
        other = write_tree(tmp_path / "after", gone)
        report = audit(other, api_baseline=baseline)
        findings = [f for f in report.findings if f.code == "AR020"]
        assert findings and findings[0].severity == "error"
        assert "pkg.sub.stable" in findings[0].component
        assert "refresh the" in findings[0].message

    def test_signature_change_is_an_error(self, tmp_path):
        baseline = self.baseline_for(tmp_path, SURFACE_TREE)
        changed = dict(SURFACE_TREE)
        changed["pkg/sub/impl.py"] = (
            "def stable(x: int, y: int = 0) -> int:\n    return x + y\n"
        )
        other = write_tree(tmp_path / "after", changed)
        report = audit(other, api_baseline=baseline)
        findings = [f for f in report.findings if f.code == "AR020"]
        assert findings and findings[0].severity == "error"

    def test_undeclared_export_is_a_warning(self, tmp_path):
        baseline = self.baseline_for(tmp_path, SURFACE_TREE)
        grown = dict(SURFACE_TREE)
        grown["pkg/sub/__init__.py"] = (
            "from pkg.sub.impl import stable, fresh\n"
            "__all__ = [\"stable\", \"fresh\"]\n"
        )
        grown["pkg/sub/impl.py"] = (
            "def stable(x: int) -> int:\n    return x\n"
            "def fresh() -> int:\n    return 2\n"
        )
        other = write_tree(tmp_path / "after", grown)
        report = audit(other, api_baseline=baseline)
        findings = [f for f in report.findings if f.code == "AR021"]
        assert findings and findings[0].severity == "warning"
        assert "pkg.sub.fresh" in findings[0].component

    def test_surface_render_is_byte_stable(self, tmp_path):
        write_tree(tmp_path, SURFACE_TREE)
        first = render_api_surface(
            build_api_surface(build_tree_index([str(tmp_path)]))
        )
        second = render_api_surface(
            build_api_surface(build_tree_index([str(tmp_path)]))
        )
        assert first == second
        assert first.endswith("\n")


# --------------------------------------------------------------- AR030/031


class TestDeadCode:
    def test_unused_export_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sub/__init__.py": (
                "from pkg.sub.impl import forgotten\n"
                "__all__ = [\"forgotten\"]\n"
            ),
            "pkg/sub/impl.py": "def forgotten():\n    return 1\n",
        })
        report = audit(tmp_path)
        findings = [f for f in report.findings if f.code == "AR030"]
        assert len(findings) == 1
        assert "pkg.sub.forgotten" in findings[0].component
        assert findings[0].path.endswith("impl.py")

    def test_export_imported_by_usage_root_is_alive(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/sub/__init__.py": (
                "from pkg.sub.impl import helper\n"
                "__all__ = [\"helper\"]\n"
            ),
            "pkg/sub/impl.py": "def helper():\n    return 1\n",
        })
        usage = tmp_path / "consumers"
        usage.mkdir()
        (usage / "test_usage.py").write_text(
            "from pkg.sub import helper\n"
        )
        report = audit(tmp_path, usage_paths=[usage])
        assert [f for f in report.findings if f.code == "AR030"] == []

    def test_registered_export_is_alive(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/sub/__init__.py": (
                "from pkg.sub.impl import plugin\n"
                "__all__ = [\"plugin\"]\n"
            ),
            "pkg/sub/impl.py": (
                "from pkg.sub.reg import register\n"
                "@register\n"
                "def plugin():\n    return 1\n"
            ),
            "pkg/sub/reg.py": "def register(f):\n    return f\n",
        })
        report = audit(tmp_path)
        assert [f for f in report.findings if f.code == "AR030"] == []

    def test_signature_vocabulary_class_is_alive(self, tmp_path):
        # Result types appear in annotations, not import statements.
        write_tree(tmp_path, {
            "pkg/sub/__init__.py": (
                "from pkg.sub.impl import Result, compute\n"
                "__all__ = [\"Result\", \"compute\"]\n"
            ),
            "pkg/sub/impl.py": (
                "class Result:\n    pass\n"
                "def compute() -> Result:\n    return Result()\n"
            ),
        })
        usage = tmp_path / "consumers"
        usage.mkdir()
        (usage / "use.py").write_text("from pkg.sub import compute\n")
        report = audit(tmp_path, usage_paths=[usage])
        assert [f for f in report.findings if f.code == "AR030"] == []

    def test_directive_suppresses_dead_export(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/sub/__init__.py": (
                "from pkg.sub.impl import oracle\n"
                "__all__ = [\"oracle\"]\n"
            ),
            "pkg/sub/impl.py": (
                "def oracle():  # reprolint: disable=AR030\n"
                "    return 1\n"
            ),
        })
        report = audit(tmp_path)
        assert [f for f in report.findings if f.code == "AR030"] == []
        assert report.suppressed == 1

    def test_orphan_private_helper_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/mod.py": (
                "def _forgotten():\n    return 1\n"
                "def used():\n    return 2\n"
            ),
            "pkg/other.py": "from pkg.mod import used\n",
        })
        report = audit(tmp_path)
        findings = [f for f in report.findings if f.code == "AR031"]
        assert any("_forgotten" in f.component for f in findings)

    def test_referenced_private_helper_passes(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/mod.py": (
                "def _inner():\n    return 1\n"
                "def outer():\n    return _inner()\n"
            ),
            "pkg/other.py": "from pkg.mod import outer\n",
        })
        report = audit(tmp_path)
        assert not any(
            "_inner" in f.component for f in report.findings
        )

    def test_orphan_module_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/alive.py": "from pkg.wired import on\n",
            "pkg/wired.py": "def on():\n    return 1\n",
            "pkg/island.py": "def off():\n    return 0\n",
        })
        usage = tmp_path / "consumers"
        usage.mkdir()
        (usage / "use.py").write_text("import pkg.alive\n")
        report = audit(tmp_path, usage_paths=[usage])
        modules = [
            f for f in report.findings
            if f.code == "AR031" and f.component.startswith("module[")
        ]
        assert [f.component for f in modules] == ["module[pkg.island]"]


# ------------------------------------------------------------ AR040-AR042


HOT_CONTRACT = LayerContract(hot_paths=("pkg.hot",))


class TestHotPathPurity:
    def test_densify_in_hot_module_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/hot/kernel.py": (
                "def solve(mat):\n"
                "    return mat.toarray().sum()\n"
            ),
        })
        report = audit(tmp_path, contract=HOT_CONTRACT)
        findings = [f for f in report.findings if f.code == "AR040"]
        assert findings and findings[0].severity == "warning"
        assert "toarray" in findings[0].message

    def test_asarray_over_sparse_name_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/hot/kernel.py": (
                "import numpy as np\n"
                "def solve(csr_mat):\n"
                "    return np.asarray(csr_mat)\n"
            ),
        })
        report = audit(tmp_path, contract=HOT_CONTRACT)
        assert [f.code for f in report.findings
                if f.code == "AR040"] == ["AR040"]

    def test_same_code_in_cold_module_passes(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/cold/kernel.py": (
                "def solve(mat):\n"
                "    return mat.toarray().sum()\n"
            ),
        })
        report = audit(tmp_path, contract=HOT_CONTRACT)
        assert [f for f in report.findings if f.code == "AR040"] == []

    def test_scalar_index_loop_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/hot/loop.py": (
                "def fill(x, n):\n"
                "    for i in range(n):\n"
                "        x[i] = i * 2.0\n"
                "    return x\n"
            ),
        })
        report = audit(tmp_path, contract=HOT_CONTRACT)
        findings = [f for f in report.findings if f.code == "AR041"]
        assert findings and findings[0].severity == "info"
        assert findings[0].line == 2

    def test_loop_invariant_allocation_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/hot/alloc.py": (
                "import numpy as np\n"
                "def run(n, steps):\n"
                "    total = 0.0\n"
                "    for _ in range(steps):\n"
                "        buf = np.empty(n)\n"
                "        buf[:] = 1.0\n"
                "        total += buf.sum()\n"
                "    return total\n"
            ),
        })
        report = audit(tmp_path, contract=HOT_CONTRACT)
        findings = [f for f in report.findings if f.code == "AR042"]
        assert findings and findings[0].data["allocator"] == "empty"

    def test_loop_dependent_allocation_passes(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/hot/alloc.py": (
                "import numpy as np\n"
                "def run(sizes):\n"
                "    out = []\n"
                "    for n in sizes:\n"
                "        out.append(np.zeros(n))\n"
                "    return out\n"
            ),
        })
        report = audit(tmp_path, contract=HOT_CONTRACT)
        assert [f for f in report.findings if f.code == "AR042"] == []

    def test_hoisted_allocation_passes(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/hot/alloc.py": (
                "import numpy as np\n"
                "def run(n, steps):\n"
                "    buf = np.empty(n)\n"
                "    total = 0.0\n"
                "    for _ in range(steps):\n"
                "        buf[:] = 1.0\n"
                "        total += buf.sum()\n"
                "    return total\n"
            ),
        })
        report = audit(tmp_path, contract=HOT_CONTRACT)
        assert [f for f in report.findings if f.code == "AR042"] == []


# ----------------------------------------------------------- registry/API


class TestRegistry:
    def test_rule_catalog_covers_every_family(self):
        leads = [rule.code for rule in all_arch_rules()]
        assert leads == sorted(leads)
        for expected in ("AR010", "AR011", "AR020", "AR030", "AR031",
                         "AR040"):
            assert any(
                expected in rule.codes for rule in all_arch_rules()
            ), expected

    def test_get_arch_rule_roundtrip(self):
        rule = get_arch_rule("AR010")
        assert rule.code == "AR010"
        with pytest.raises(KeyError):
            get_arch_rule("AR999")

    def test_every_rule_has_metadata(self):
        for rule in all_arch_rules():
            assert rule.name and rule.rationale and rule.codes


# ------------------------------------------------------- real-tree gates


class TestRealTree:
    def test_default_contract_is_consistent(self):
        contract = default_contract()
        # Every allowed dependency names a declared node, so typos in
        # the contract cannot silently allow everything.
        for node, allowed in contract.layers.items():
            for target in allowed:
                assert target in contract.layers, (node, target)
        assert contract is not DEFAULT_CONTRACT  # fresh instance
        assert contract == DEFAULT_CONTRACT

    def test_src_has_no_layering_violations(self):
        report = audit_tree(["src"])
        structural = [
            f for f in report.findings
            if f.code in ("AR010", "AR011")
        ]
        assert structural == []

    def test_src_passes_the_whole_gate(self):
        """Acceptance: the merged tree audits clean (`repro arch src`)."""
        report = audit_tree(
            ["src"], api_baseline_path="API_SURFACE.json"
        )
        assert [f.component for f in report.findings] == []

    def test_exceptions_are_layer_violations(self):
        # Each sanctioned exception must still violate the package
        # contract — otherwise the entry is stale and should go.
        contract = default_contract()
        from repro.analysis.arch.graph import package_of

        for source, target in contract.exceptions:
            src_pkg = package_of(source, "repro")
            dst_pkg = package_of(target, "repro")
            assert not contract.allows(src_pkg, dst_pkg), (source, target)
