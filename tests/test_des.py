"""Tests for the discrete-event simulation substrate."""

import numpy as np
import pytest

from repro.des.engine import Engine
from repro.des.measurements import SojournStats, WelfordAccumulator
from repro.des.processes import PoissonArrivals, exponential_sampler
from repro.des.server import FCFSQueueServer, ProcessorSharingServer, VirtualMachine
from repro.queueing.validation import compare_with_des, simulate_mm1


class TestEngine:
    def test_schedule_and_run(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("b"))
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.run()
        assert seen == ["a", "b"]
        assert engine.now == 2.0

    def test_tie_break_is_schedule_order(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(1.0, lambda: seen.append(2))
        engine.run()
        assert seen == [1, 2]

    def test_cancelled_events_skipped(self):
        engine = Engine()
        seen = []
        event = engine.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        engine.run()
        assert seen == []
        assert engine.events_processed == 0

    def test_run_until_advances_clock(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run_until(5.0)
        assert engine.now == 5.0
        assert engine.pending == 0

    def test_run_until_leaves_future_events(self):
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run_until(5.0)
        assert engine.pending == 1

    def test_rejects_past_scheduling(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        engine = Engine()
        ticks = []
        engine.schedule_at(3.0, lambda: ticks.append(engine.now))
        engine.run()
        assert ticks == [3.0]

    def test_events_scheduled_during_run(self):
        engine = Engine()
        seen = []

        def first():
            seen.append("first")
            engine.schedule(1.0, lambda: seen.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == ["first", "second"]
        assert engine.now == 2.0


class TestWelford:
    def test_mean_and_variance(self):
        acc = WelfordAccumulator()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for x in data:
            acc.add(x)
        assert acc.mean == pytest.approx(np.mean(data))
        assert acc.variance == pytest.approx(np.var(data, ddof=1))
        assert acc.count == len(data)

    def test_empty(self):
        acc = WelfordAccumulator()
        assert acc.mean == 0.0
        assert acc.variance == 0.0
        assert acc.stderr == 0.0


class TestSojournStats:
    def test_warmup_discard(self):
        stats = SojournStats(warmup_time=10.0)
        stats.record(5.0, 6.0)    # arrival during warmup: discarded
        stats.record(11.0, 13.0)  # counted
        assert stats.count == 1
        assert stats.discarded == 1
        assert stats.mean == pytest.approx(2.0)

    def test_rejects_negative_sojourn(self):
        stats = SojournStats()
        with pytest.raises(ValueError):
            stats.record(2.0, 1.0)

    def test_keep_raw(self):
        stats = SojournStats(keep_raw=True)
        stats.record(0.0, 1.5)
        assert stats.raw == [1.5]


class TestServers:
    def test_fcfs_processes_in_order(self):
        engine = Engine()
        server = FCFSQueueServer(engine, rate=1.0)
        server.arrive(1.0)
        server.arrive(1.0)
        assert server.queue_length == 2
        engine.run()
        assert server.stats.count == 2
        # Second job waits for the first: sojourns 1.0 and 2.0.
        assert server.stats.mean == pytest.approx(1.5)

    def test_ps_shares_capacity(self):
        engine = Engine()
        vm = VirtualMachine(engine, rate=1.0, stats=SojournStats(keep_raw=True))
        vm.arrive(1.0)
        vm.arrive(1.0)
        engine.run()
        # Two equal jobs sharing a unit-rate PS server both finish at t=2.
        assert sorted(vm.stats.raw) == pytest.approx([2.0, 2.0])

    def test_ps_small_job_preempts_share(self):
        engine = Engine()
        vm = VirtualMachine(engine, rate=1.0, stats=SojournStats(keep_raw=True))
        vm.arrive(2.0)
        vm.arrive(0.5)
        engine.run()
        # Short job: shares until done at t=1.0 (0.5*2); long job ends at 2.5.
        assert sorted(vm.stats.raw) == pytest.approx([1.0, 2.5])

    def test_processor_sharing_server_shares(self):
        engine = Engine()
        server = ProcessorSharingServer(
            engine, capacity=1.0,
            service_rates=np.array([10.0, 5.0]),
            shares=np.array([0.5, 0.0]),
        )
        assert server.active_classes == [0]
        assert server.arrive(0, 1.0)
        assert not server.arrive(1, 1.0)  # class 1 has no VM

    def test_shares_sum_validated(self):
        engine = Engine()
        with pytest.raises(ValueError, match="shares"):
            ProcessorSharingServer(
                engine, 1.0, np.array([1.0, 1.0]), np.array([0.7, 0.6])
            )


class TestPoissonArrivals:
    def test_generates_until_stop(self):
        engine = Engine()
        count = [0]
        PoissonArrivals(
            engine, rate=5.0, sink=lambda w: count.__setitem__(0, count[0] + 1),
            seed=1, stop_time=100.0,
        )
        engine.run()
        # ~500 expected; allow wide tolerance.
        assert 380 < count[0] < 620

    def test_exponential_sampler(self):
        rng = np.random.default_rng(0)
        sample = exponential_sampler(rng, mean=2.0)
        draws = [sample() for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.1)


class TestDESValidation:
    """The paper's Eq. 1 must match simulated delays (its core premise)."""

    @pytest.mark.parametrize("discipline", ["fcfs", "ps"])
    def test_mm1_mean_delay_matches(self, discipline):
        cmp = compare_with_des(
            service_rate=10.0, arrival_rate=7.0,
            horizon=3000.0, seed=42, discipline=discipline,
        )
        assert cmp.relative_error < 0.08, cmp

    def test_ps_and_fcfs_agree_on_mean(self):
        # M/M/1-PS and M/M/1-FCFS share the same mean sojourn time — the
        # fact that lets the paper use Eq. 1 for CPU-sharing VMs.
        ps = compare_with_des(10.0, 8.0, horizon=4000.0, seed=7, discipline="ps")
        fcfs = compare_with_des(10.0, 8.0, horizon=4000.0, seed=7,
                                discipline="fcfs")
        assert ps.simulated_mean == pytest.approx(fcfs.simulated_mean, rel=0.15)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            simulate_mm1(5.0, 5.0, horizon=10.0)

    def test_delay_grows_with_load(self):
        low = simulate_mm1(10.0, 3.0, horizon=2000.0, seed=0).mean
        high = simulate_mm1(10.0, 9.0, horizon=2000.0, seed=0).mean
        assert high > low
