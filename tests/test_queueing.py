"""Tests for the analytic queueing models (paper Eq. 1 and extensions)."""

import numpy as np
import pytest

from repro.queueing.mm1 import (
    MM1Queue,
    mm1_max_rate,
    mm1_mean_delay,
    mm1_required_capacity,
)
from repro.queueing.mmc import MMcQueue, erlang_c


class TestMM1Formulas:
    def test_mean_delay_matches_eq1(self):
        # R = 1/(mu_eff - lambda)
        assert mm1_mean_delay(10.0, 8.0) == pytest.approx(0.5)

    def test_mean_delay_unstable_is_inf(self):
        assert mm1_mean_delay(10.0, 10.0) == np.inf
        assert mm1_mean_delay(10.0, 12.0) == np.inf

    def test_mean_delay_vectorized(self):
        out = mm1_mean_delay(np.array([10.0, 10.0]), np.array([8.0, 11.0]))
        assert out[0] == pytest.approx(0.5)
        assert out[1] == np.inf

    def test_required_capacity_inverts_delay(self):
        mu = mm1_required_capacity(arrival_rate=8.0, deadline=0.5)
        assert mm1_mean_delay(mu, 8.0) == pytest.approx(0.5)

    def test_max_rate_inverts_delay(self):
        lam = mm1_max_rate(service_rate=10.0, deadline=0.5)
        assert mm1_mean_delay(10.0, lam) == pytest.approx(0.5)

    def test_max_rate_clips_at_zero(self):
        # A server that cannot serve within the deadline admits nothing.
        assert mm1_max_rate(service_rate=1.0, deadline=0.5) == 0.0

    def test_roundtrip_capacity_and_rate(self):
        for lam, d in [(5.0, 0.1), (100.0, 0.01), (0.5, 2.0)]:
            mu = mm1_required_capacity(lam, d)
            assert mm1_max_rate(mu, d) == pytest.approx(lam)


class TestMM1Queue:
    def test_basic_metrics(self):
        q = MM1Queue(service_rate=10.0, arrival_rate=8.0)
        assert q.utilization == pytest.approx(0.8)
        assert q.is_stable
        assert q.mean_sojourn_time == pytest.approx(0.5)
        assert q.mean_queue_length == pytest.approx(4.0)
        assert q.mean_waiting_time == pytest.approx(0.4)

    def test_littles_law(self):
        q = MM1Queue(service_rate=7.0, arrival_rate=3.0)
        # L = lambda * W
        assert q.mean_queue_length == pytest.approx(
            q.arrival_rate * q.mean_sojourn_time
        )

    def test_unstable_queue(self):
        q = MM1Queue(service_rate=5.0, arrival_rate=5.0)
        assert not q.is_stable
        assert q.mean_sojourn_time == np.inf
        assert q.mean_queue_length == np.inf

    def test_sojourn_quantile(self):
        q = MM1Queue(service_rate=10.0, arrival_rate=8.0)
        # Median of Exp(rate=2) is ln(2)/2.
        assert q.sojourn_time_quantile(0.5) == pytest.approx(np.log(2) / 2)

    def test_quantile_bounds(self):
        q = MM1Queue(10.0, 1.0)
        with pytest.raises(ValueError):
            q.sojourn_time_quantile(1.0)

    def test_delay_violation_probability(self):
        q = MM1Queue(service_rate=10.0, arrival_rate=8.0)
        assert q.delay_violation_probability(0.5) == pytest.approx(np.exp(-1.0))

    def test_violation_probability_unstable(self):
        assert MM1Queue(5.0, 6.0).delay_violation_probability(1.0) == 1.0


class TestErlangC:
    def test_single_server_reduces_to_mm1(self):
        # For c=1, P(wait) = rho.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturated(self):
        assert erlang_c(2, 2.0) == 1.0

    def test_known_value(self):
        # Classic check: c=2, a=1 => P(wait) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_monotone_in_load(self):
        values = [erlang_c(5, a) for a in (1.0, 2.0, 3.0, 4.0, 4.9)]
        assert all(x < y for x, y in zip(values, values[1:]))

    def test_large_c_stable(self):
        # Log-space evaluation must not overflow for big systems.
        p = erlang_c(500, 450.0)
        assert 0.0 < p < 1.0

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            erlang_c(0, 0.5)


class TestMMcQueue:
    def test_c1_matches_mm1(self):
        mmc = MMcQueue(num_servers=1, service_rate=10.0, arrival_rate=8.0)
        mm1 = MM1Queue(service_rate=10.0, arrival_rate=8.0)
        assert mmc.mean_sojourn_time == pytest.approx(mm1.mean_sojourn_time)

    def test_pooling_beats_split_queues(self):
        # M/M/2 at rate mu beats two M/M/1 each at rate mu with half the load.
        pooled = MMcQueue(2, service_rate=10.0, arrival_rate=16.0)
        split = MM1Queue(service_rate=10.0, arrival_rate=8.0)
        assert pooled.mean_sojourn_time < split.mean_sojourn_time

    def test_unstable(self):
        q = MMcQueue(2, 5.0, 10.0)
        assert not q.is_stable
        assert q.mean_sojourn_time == np.inf

    def test_utilization(self):
        q = MMcQueue(4, 5.0, 10.0)
        assert q.offered_load == pytest.approx(2.0)
        assert q.utilization == pytest.approx(0.5)
