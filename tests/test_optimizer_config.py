"""Tests for OptimizerConfig and the optimizer's config-only API."""

import pickle
import warnings

import numpy as np
import pytest

from repro.core.config import OptimizerConfig
from repro.core.optimizer import ProfitAwareOptimizer
from repro.obs import InMemoryCollector, NullCollector


@pytest.fixture
def slot(small_topology):
    rng = np.random.default_rng(11)
    arrivals = rng.uniform(20.0, 60.0, size=(2, 2))
    prices = np.array([0.06, 0.10])
    return small_topology, arrivals, prices


class TestValidation:
    def test_defaults_are_valid(self):
        config = OptimizerConfig()
        assert config.level_method == "auto"
        assert config.warm_start is True
        assert isinstance(config.collector, NullCollector)

    @pytest.mark.parametrize("kwargs, match", [
        (dict(level_method="magic"), "level_method"),
        (dict(formulation="sideways"), "formulation"),
        (dict(lp_method="cplex"), "lp_method"),
        (dict(milp_method="gurobi"), "milp_method"),
        (dict(deadline_margin=0.0), "deadline_margin"),
        (dict(deadline_margin=1.5), "deadline_margin"),
        (dict(percentile_sla=0.0), "percentile_sla"),
        (dict(percentile_sla=1.0), "percentile_sla"),
    ])
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            OptimizerConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            OptimizerConfig().level_method = "lp"

    def test_replace_revalidates(self):
        config = OptimizerConfig()
        assert config.replace(deadline_margin=0.9).deadline_margin == 0.9
        with pytest.raises(ValueError):
            config.replace(deadline_margin=-1.0)

    def test_delay_factor(self):
        assert OptimizerConfig().delay_factor == 1.0
        eps = 0.05
        expected = float(np.log(1.0 / eps))
        assert OptimizerConfig(percentile_sla=eps).delay_factor == \
            pytest.approx(expected)
        # eps > 1/e floors at the mean-delay requirement.
        assert OptimizerConfig(percentile_sla=0.9).delay_factor == 1.0

    def test_equality_ignores_collector(self):
        a = OptimizerConfig(collector=InMemoryCollector())
        b = OptimizerConfig()
        assert a == b

    def test_picklable(self):
        config = OptimizerConfig(level_method="greedy", lp_method="ipm")
        assert pickle.loads(pickle.dumps(config)) == config


class TestOptimizerSignature:
    def test_config_signature(self, slot):
        topo, arrivals, prices = slot
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            opt = ProfitAwareOptimizer(
                topo, config=OptimizerConfig(deadline_margin=0.9)
            )
        assert opt.deadline_margin == 0.9
        assert opt.config.deadline_margin == 0.9
        assert opt.plan_slot(arrivals, prices) is not None

    def test_flat_kwargs_rejected(self, small_topology):
        """The PR-2 deprecation shim is gone: flat knobs are TypeErrors."""
        with pytest.raises(TypeError):
            ProfitAwareOptimizer(small_topology, deadline_margin=0.9)
        with pytest.raises(TypeError):
            ProfitAwareOptimizer(
                small_topology, lp_method="simplex", warm_start=True
            )

    def test_config_plus_kwargs_rejected(self, small_topology):
        with pytest.raises(TypeError):
            ProfitAwareOptimizer(
                small_topology, config=OptimizerConfig(), warm_start=False
            )

    def test_unknown_kwarg_rejected(self, small_topology):
        with pytest.raises(TypeError):
            ProfitAwareOptimizer(small_topology, wram_start=False)

    def test_slot_duration_validated(self, slot):
        topo, arrivals, prices = slot
        opt = ProfitAwareOptimizer(topo)
        with pytest.raises(ValueError, match="slot_duration"):
            opt.plan_slot(arrivals, prices, slot_duration=0.0)
        with pytest.raises(ValueError, match="slot_duration"):
            opt.plan_slot(arrivals, prices, slot_duration=-1.0)

    def test_mirror_attributes_match_config(self, small_topology):
        config = OptimizerConfig(
            level_method="greedy", formulation="per_server",
            lp_method="ipm", milp_method="bb", consolidate=True,
            apply_pue=True, use_spare_capacity=False,
            deadline_margin=0.8, percentile_sla=0.1, warm_start=False,
        )
        opt = ProfitAwareOptimizer(small_topology, config=config)
        for name in ("level_method", "formulation", "lp_method",
                     "milp_method", "consolidate", "apply_pue",
                     "use_spare_capacity", "deadline_margin",
                     "percentile_sla", "warm_start"):
            assert getattr(opt, name) == getattr(config, name)
        assert opt._delay_factor == config.delay_factor


class TestStatsAndTraceFields:
    def test_warm_outcome_off_when_disabled(self, slot):
        topo, arrivals, prices = slot
        opt = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(warm_start=False)
        )
        opt.plan_slot(arrivals, prices)
        assert opt.last_stats.warm_outcome == "off"

    def test_warm_outcome_cold_then_hit(self, slot):
        topo, arrivals, prices = slot
        opt = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(lp_method="simplex")
        )
        opt.plan_slot(arrivals, prices)
        assert opt.last_stats.warm_outcome == "cold"
        opt.plan_slot(arrivals, prices)
        assert opt.last_stats.warm_outcome == "hit"

    def test_highs_lp_never_hits(self, slot):
        """The scipy HiGHS LP bridge emits no state: cold every slot."""
        topo, arrivals, prices = slot
        opt = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(lp_method="highs")
        )
        opt.plan_slot(arrivals, prices)
        opt.plan_slot(arrivals, prices)
        assert opt.last_stats.warm_outcome == "cold"

    def test_phase_times_recorded(self, slot):
        topo, arrivals, prices = slot
        opt = ProfitAwareOptimizer(topo)
        opt.plan_slot(arrivals, prices)
        stats = opt.last_stats
        assert stats.solve_time > 0.0
        assert stats.build_time >= 0.0
        assert (stats.build_time + stats.solve_time
                + stats.postprocess_time) <= stats.wall_time + 1e-9
