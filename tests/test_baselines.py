"""Tests for the Balanced and EvenSplit baselines."""

import numpy as np
import pytest

from repro.core.baselines import BalancedDispatcher, EvenSplitDispatcher
from repro.core.objective import evaluate_plan


class TestBalancedDispatcher:
    def test_shares_are_even_split(self, small_topology):
        balanced = BalancedDispatcher(small_topology)
        plan = balanced.plan_slot(np.full((2, 2), 10.0), np.array([0.1, 0.2]))
        assert np.allclose(plan.shares, 0.5)

    def test_fills_cheapest_datacenter_first(self, small_topology):
        balanced = BalancedDispatcher(small_topology)
        arrivals = np.full((2, 2), 10.0)  # light: fits in one DC
        # dc2 cheaper: everything should land there.
        plan = balanced.plan_slot(arrivals, np.array([0.2, 0.1]))
        loads = plan.dc_loads()
        assert loads[:, 0].sum() == pytest.approx(0.0, abs=1e-9)
        assert loads[:, 1].sum() == pytest.approx(40.0)

    def test_overflow_to_next_cheapest(self, small_topology):
        balanced = BalancedDispatcher(small_topology)
        arrivals = np.full((2, 2), 60.0)
        plan = balanced.plan_slot(arrivals, np.array([0.2, 0.1]))
        loads = plan.dc_loads()
        # dc2 (2 servers) saturates; overflow reaches dc1.
        assert loads[:, 0].sum() > 0

    def test_drops_when_everything_full(self, small_topology):
        balanced = BalancedDispatcher(small_topology)
        arrivals = np.full((2, 2), 1e6)
        plan = balanced.plan_slot(arrivals, np.array([0.1, 0.2]))
        assert np.all(plan.served_rates() < 2e6)
        assert plan.meets_deadlines()

    def test_load_spread_evenly_within_dc(self, small_topology):
        balanced = BalancedDispatcher(small_topology)
        plan = balanced.plan_slot(np.full((2, 2), 30.0), np.array([0.1, 0.2]))
        loads = plan.server_loads()  # (K, N); dc1 = servers 0..2
        assert np.allclose(loads[:, 0], loads[:, 1])
        assert np.allclose(loads[:, 1], loads[:, 2])

    def test_deadlines_respected_at_capacity(self, small_topology):
        balanced = BalancedDispatcher(small_topology)
        plan = balanced.plan_slot(np.full((2, 2), 1e5), np.array([0.1, 0.2]))
        assert plan.meets_deadlines()

    def test_admission_level_restricts_capacity(self, multilevel_topology):
        generous = BalancedDispatcher(multilevel_topology, admission_level=None)
        strict = BalancedDispatcher(multilevel_topology, admission_level=0)
        arrivals = np.array([[1e6], [1e6]])
        prices = np.array([0.1, 0.1])
        served_g = generous.plan_slot(arrivals, prices).served_rates().sum()
        served_s = strict.plan_slot(arrivals, prices).served_rates().sum()
        assert served_s < served_g

    def test_shape_validation(self, small_topology):
        balanced = BalancedDispatcher(small_topology)
        with pytest.raises(ValueError):
            balanced.plan_slot(np.zeros((3, 2)), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            balanced.plan_slot(np.zeros((2, 2)), np.array([0.1]))

    def test_name(self, small_topology):
        assert BalancedDispatcher(small_topology).name == "balanced"


class TestEvenSplitDispatcher:
    def test_spreads_over_all_servers(self, small_topology):
        disp = EvenSplitDispatcher(small_topology)
        plan = disp.plan_slot(np.full((2, 2), 20.0), np.array([0.1, 0.2]))
        loads = plan.server_loads()
        # 40 req/u split over 5 servers = 8 each.
        assert np.allclose(loads[0], 8.0)

    def test_ignores_prices(self, small_topology):
        disp = EvenSplitDispatcher(small_topology)
        a = disp.plan_slot(np.full((2, 2), 20.0), np.array([0.1, 0.2]))
        b = disp.plan_slot(np.full((2, 2), 20.0), np.array([0.2, 0.1]))
        assert np.allclose(a.rates, b.rates)

    def test_caps_at_capacity(self, small_topology):
        disp = EvenSplitDispatcher(small_topology)
        plan = disp.plan_slot(np.full((2, 2), 1e6), np.array([0.1, 0.2]))
        assert plan.meets_deadlines()

    def test_attribution_proportional_to_frontends(self, small_topology):
        disp = EvenSplitDispatcher(small_topology)
        arrivals = np.array([[30.0, 10.0], [0.0, 0.0]])
        plan = disp.plan_slot(arrivals, np.array([0.1, 0.2]))
        dispatched = plan.rates.sum(axis=2)  # (K, S)
        assert dispatched[0, 0] == pytest.approx(3 * dispatched[0, 1])

    def test_zero_arrivals(self, small_topology):
        disp = EvenSplitDispatcher(small_topology)
        plan = disp.plan_slot(np.zeros((2, 2)), np.array([0.1, 0.2]))
        assert plan.served_rates().sum() == 0.0


class TestBaselineVsOptimizer:
    def test_optimizer_dominates_both_baselines(self, small_topology):
        from repro.core.optimizer import ProfitAwareOptimizer
        arrivals = np.array([[80.0, 50.0], [60.0, 90.0]])
        prices = np.array([0.15, 0.04])
        plans = {
            "opt": ProfitAwareOptimizer(small_topology).plan_slot(
                arrivals, prices),
            "bal": BalancedDispatcher(small_topology).plan_slot(
                arrivals, prices),
            "even": EvenSplitDispatcher(small_topology).plan_slot(
                arrivals, prices),
        }
        nets = {
            name: evaluate_plan(plan, arrivals, prices).net_profit
            for name, plan in plans.items()
        }
        assert nets["opt"] >= nets["bal"] - 1e-9
        assert nets["opt"] >= nets["even"] - 1e-9
