"""Tests for the repro.obs telemetry layer.

Covers the ISSUE acceptance points: collector merge semantics (a
serial traced run equals the merged parallel aggregate), SlotTrace
JSONL round-trips, phase-time consistency, and the no-op overhead
guard for the NullCollector default.
"""

import json
import time

import numpy as np
import pytest

from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.obs import (
    NULL_COLLECTOR,
    Collector,
    InMemoryCollector,
    NullCollector,
    SlotTrace,
    TimerStats,
    read_traces,
    write_traces,
)
from repro.sim.parallel import DispatcherSpec, parallel_run_simulation
from repro.sim.slotted import run_simulation
from repro.workload.traces import WorkloadTrace


def _trace(slot=0, **overrides):
    base = dict(
        slot=slot,
        method="lp",
        formulation="aggregated",
        warm_start="hit",
        objective=123.5,
        total_time=0.01,
        phase_times={"build": 0.002, "solve": 0.006, "postprocess": 0.001},
        iterations=17,
        nodes=0,
        lp_evaluations=0,
        num_variables=8,
        num_constraints=5,
        residuals={"ineq": 1e-12, "eq": 0.0},
    )
    base.update(overrides)
    return SlotTrace(**base)


@pytest.fixture
def setup(small_topology):
    rng = np.random.default_rng(7)
    trace = WorkloadTrace(rng.uniform(10.0, 60.0, size=(2, 2, 6)))
    market = MultiElectricityMarket([
        PriceTrace("a", rng.uniform(0.04, 0.12, size=6)),
        PriceTrace("b", rng.uniform(0.04, 0.12, size=6)),
    ])
    return small_topology, trace, market


class TestSlotTrace:
    def test_json_round_trip(self):
        t = _trace(slot=3, warm_start="miss", nodes=4)
        again = SlotTrace.from_json(t.to_json())
        assert again == t

    def test_jsonl_file_round_trip(self, tmp_path):
        traces = [_trace(slot=i, objective=float(i)) for i in range(5)]
        path = tmp_path / "traces.jsonl"
        assert write_traces(traces, path) == 5
        assert read_traces(path) == traces
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            assert json.loads(line)["method"] == "lp"

    def test_append_mode(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_traces([_trace(slot=0)], path)
        write_traces([_trace(slot=1)], path, append=True)
        assert [t.slot for t in read_traces(path)] == [0, 1]

    def test_unknown_warm_outcome_rejected(self):
        with pytest.raises(ValueError, match="warm_start"):
            _trace(warm_start="lukewarm")

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError, match="slot"):
            _trace(slot=-1)

    def test_from_dict_ignores_unknown_keys(self):
        d = _trace().to_dict()
        d["future_field"] = "whatever"
        assert SlotTrace.from_dict(d) == _trace()

    def test_phase_time_total(self):
        assert _trace().phase_time_total == pytest.approx(0.009)


class TestTimerStats:
    def test_add_and_mean(self):
        s = TimerStats()
        s.add(0.2)
        s.add(0.4)
        assert s.count == 2
        assert s.mean == pytest.approx(0.3)
        assert s.min == pytest.approx(0.2)
        assert s.max == pytest.approx(0.4)

    def test_merge(self):
        a, b = TimerStats(), TimerStats()
        a.add(0.1)
        b.add(0.5)
        a.merge(b)
        assert a.count == 2
        assert a.total == pytest.approx(0.6)
        assert a.max == pytest.approx(0.5)


class TestInMemoryCollector:
    def test_counters_and_histograms(self):
        c = InMemoryCollector()
        c.increment("x")
        c.increment("x", 4.0)
        c.observe("h", 1.0)
        c.observe("h", 2.0)
        assert c.counters["x"] == 5.0
        assert c.histograms["h"] == [1.0, 2.0]

    def test_timer_context_manager(self):
        c = InMemoryCollector()
        with c.timer("t"):
            pass
        assert c.timers["t"].count == 1
        assert c.timers["t"].total >= 0.0

    def test_merge_is_aggregation(self):
        a, b = InMemoryCollector(), InMemoryCollector()
        a.increment("n", 2)
        b.increment("n", 3)
        a.observe_time("t", 0.1)
        b.observe_time("t", 0.3)
        b.record_slot(_trace(slot=1))
        a.record_slot(_trace(slot=4))
        a.merge(b)
        assert a.counters["n"] == 5.0
        assert a.timers["t"].count == 2
        # Traces re-sorted into slot order at the merge.
        assert [t.slot for t in a.slot_traces] == [1, 4]

    def test_summary_shape(self):
        c = InMemoryCollector()
        c.increment("n")
        c.record_slot(_trace(warm_start="hit"))
        s = c.summary()
        assert s["counters"] == {"n": 1.0}
        assert s["slots"] == 1
        assert s["warm_start"] == {"hit": 1}

    def test_satisfies_protocol(self):
        assert isinstance(InMemoryCollector(), Collector)
        assert isinstance(NullCollector(), Collector)


class TestSerialEqualsParallelAggregate:
    def test_merge_semantics(self, setup):
        """A chunked parallel run merges to the serial trace structure.

        Wall times differ run to run, and chunk boundaries restart the
        warm chain, so the comparison is on warm-independent structure:
        with warm_start=False every slot's (slot, method, objective)
        triple and the non-timing counters must agree exactly.
        """
        topo, trace, market = setup
        config = OptimizerConfig(lp_method="simplex", warm_start=False)

        serial = InMemoryCollector()
        run_simulation(
            ProfitAwareOptimizer(topo, config=config), trace, market,
            collector=serial,
        )
        merged = InMemoryCollector()
        parallel_run_simulation(
            topo, DispatcherSpec("optimized", {"config": config}),
            trace, market, workers=3, collector=merged,
        )

        def key(c):
            return [(t.slot, t.method, t.warm_start,
                     t.iterations, round(t.objective, 6))
                    for t in c.slot_traces]

        assert key(merged) == key(serial)
        assert merged.counters["optimizer.slots"] == \
            serial.counters["optimizer.slots"]
        assert merged.counters["simplex.pivots"] == \
            serial.counters["simplex.pivots"]

    def test_parallel_traces_cover_all_slots_in_order(self, setup):
        topo, trace, market = setup
        merged = InMemoryCollector()
        parallel_run_simulation(
            topo,
            DispatcherSpec("optimized",
                           {"config": OptimizerConfig(lp_method="simplex")}),
            trace, market, workers=2, collector=merged,
        )
        assert [t.slot for t in merged.slot_traces] == list(range(6))


class TestTracedRun:
    def test_phase_times_bounded_by_total(self, setup):
        topo, trace, market = setup
        collector = InMemoryCollector()
        run_simulation(
            ProfitAwareOptimizer(
                topo, config=OptimizerConfig(lp_method="simplex")),
            trace, market, collector=collector,
        )
        assert len(collector.slot_traces) == 6
        for t in collector.slot_traces:
            assert t.phase_time_total <= t.total_time + 1e-9

    def test_warm_hits_recorded(self, setup):
        topo, trace, market = setup
        collector = InMemoryCollector()
        run_simulation(
            ProfitAwareOptimizer(
                topo, config=OptimizerConfig(lp_method="simplex")),
            trace, market, collector=collector,
        )
        counts = collector.warm_start_counts()
        assert counts.get("cold", 0) >= 1       # first slot has no state
        assert counts.get("hit", 0) >= 1        # simplex re-uses the basis
        assert counts.get("off", 0) == 0
        assert collector.counters["controller.slots"] == 6
        assert collector.timers["controller.plan_slot"].count == 6

    def test_run_collector_restored_afterwards(self, setup):
        # run_simulation installs its collector on the dispatcher for
        # the duration of the run only; the dispatcher's own collector
        # comes back afterwards, even if the run blows up mid-loop.
        topo, trace, market = setup
        own = InMemoryCollector()
        dispatcher = ProfitAwareOptimizer(
            topo, config=OptimizerConfig(collector=own)
        )
        run_collector = InMemoryCollector()
        run_simulation(dispatcher, trace, market, num_slots=2,
                       collector=run_collector)
        assert dispatcher.collector is own
        assert len(run_collector.slot_traces) == 2
        assert own.slot_traces == []

        class Boom(Exception):
            pass

        bad_market = MultiElectricityMarket([
            PriceTrace("a", np.array([0.08])),
            PriceTrace("b", np.array([0.08])),
        ])
        original_prices_at = bad_market.prices_at

        def explode(t):
            raise Boom()

        bad_market.prices_at = explode
        with pytest.raises(Boom):
            run_simulation(dispatcher, trace, bad_market, num_slots=1,
                           collector=run_collector)
        bad_market.prices_at = original_prices_at
        assert dispatcher.collector is own


class TestNoOpOverhead:
    def test_null_collector_is_shared_singletons(self):
        a, b = NullCollector(), NULL_COLLECTOR
        assert a.timer("x") is b.timer("y")  # one process-wide timer
        assert NULL_COLLECTOR.enabled is False

    def test_default_run_records_nothing(self, setup):
        topo, trace, market = setup
        opt = ProfitAwareOptimizer(topo)
        assert opt.collector.enabled is False
        run_simulation(opt, trace, market)
        # Still the inert default, not silently swapped.
        assert isinstance(opt.collector, NullCollector)

    def test_null_calls_are_cheap(self):
        """Generous absolute guard: ~40k no-op calls well under 0.5 s."""
        c = NULL_COLLECTOR
        start = time.perf_counter()
        for _ in range(10_000):
            c.increment("a")
            c.observe("b", 1.0)
            c.observe_time("c", 0.1)
            with c.timer("d"):
                pass
        assert time.perf_counter() - start < 0.5
